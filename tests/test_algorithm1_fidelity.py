"""Fidelity of Algorithm 1 against brute-force Eq. 5/6 evaluation.

On tiny tables with SR = 1 (the sample IS the relation), the Q_{k,j,n}
counters and S_n^2 have closed brute-force forms we can compute in pure
Python directly from the definitions:

    Q_{k,j,n} = |R_1 x ... x {t_kj} x ... x R_K  restricted to the join|
    S_n^2     = sum_k (1/(n_k - 1)) sum_j (Q_{k,j}/prod_{k' != k} n_{k'}
                                            - rho_n)^2

The estimator's provenance-scan implementation must match exactly.
"""

import numpy as np
import pytest

from repro.executor import Executor
from repro.optimizer import Optimizer
from repro.sampling import SampleDatabase, SelectivityEstimator
from repro.storage import Column, ColumnType, Database, Schema, Table


def tiny_db():
    schema_a = Schema([Column("k", ColumnType.INT), Column("v", ColumnType.INT)])
    schema_b = Schema([Column("k", ColumnType.INT), Column("w", ColumnType.INT)])
    db = Database("tiny")
    db.add_table(
        Table(
            "ta",
            schema_a,
            {
                "k": np.array([1, 1, 2, 3, 4, 4], dtype=np.int64),
                "v": np.array([0, 1, 0, 1, 0, 1], dtype=np.int64),
            },
        )
    )
    db.add_table(
        Table(
            "tb",
            schema_b,
            {
                "k": np.array([1, 2, 2, 5], dtype=np.int64),
                "w": np.array([0, 1, 0, 1], dtype=np.int64),
            },
        )
    )
    return db


def full_sample_db(db):
    """SR = 1: every sample table is the full relation (sorted indices)."""
    return SampleDatabase(db, sampling_ratio=1.0, seed=0)


def brute_force_join_stats(left_keys, right_keys):
    """(rho_n, S_n^2) for the equijoin, straight from the definitions."""
    n1, n2 = len(left_keys), len(right_keys)
    matches = [
        (i, j)
        for i in range(n1)
        for j in range(n2)
        if left_keys[i] == right_keys[j]
    ]
    rho = len(matches) / (n1 * n2)
    q1 = [sum(1 for (i, j) in matches if i == a) for a in range(n1)]
    q2 = [sum(1 for (i, j) in matches if j == b) for b in range(n2)]
    v1 = sum((q / n2 - rho) ** 2 for q in q1) / (n1 - 1)
    v2 = sum((q / n1 - rho) ** 2 for q in q2) / (n2 - 1)
    s_n2 = v1 + v2
    variance = v1 / n1 + v2 / n2
    return rho, variance, (v1 / n1, v2 / n2)


class TestAlgorithmOneFidelity:
    def test_join_rho_and_variance_match_brute_force(self):
        db = tiny_db()
        samples = full_sample_db(db)
        planned = Optimizer(db).plan_sql(
            "SELECT * FROM ta, tb WHERE ta.k = tb.k"
        )
        estimate = SelectivityEstimator(samples, planned).estimate()
        node = estimate.resolve(planned.root.op_id)

        left = db.table("ta").column("k").tolist()
        right = db.table("tb").column("k").tolist()
        rho, variance, components = brute_force_join_stats(left, right)

        assert node.mean == pytest.approx(rho, rel=1e-12)
        assert node.variance == pytest.approx(variance, rel=1e-12)
        got = (node.var_components["ta"], node.var_components["tb"])
        assert got[0] == pytest.approx(components[0], rel=1e-12)
        assert got[1] == pytest.approx(components[1], rel=1e-12)

    def test_join_with_selection_matches_brute_force(self):
        db = tiny_db()
        samples = full_sample_db(db)
        planned = Optimizer(db).plan_sql(
            "SELECT * FROM ta, tb WHERE ta.k = tb.k AND ta.v = 1"
        )
        estimate = SelectivityEstimator(samples, planned).estimate()
        node = estimate.resolve(planned.root.op_id)

        table_a = db.table("ta")
        left = [
            (k if v == 1 else None)
            for k, v in zip(
                table_a.column("k").tolist(), table_a.column("v").tolist()
            )
        ]
        right = db.table("tb").column("k").tolist()
        # brute force over the *unfiltered* product space: selection rows
        # that fail the predicate contribute zero matches.
        n1, n2 = len(left), len(right)
        matches = [
            (i, j)
            for i in range(n1)
            for j in range(n2)
            if left[i] is not None and left[i] == right[j]
        ]
        rho = len(matches) / (n1 * n2)
        assert node.mean == pytest.approx(rho, rel=1e-12)

        # variance: note the estimator filters the sample *before* joining,
        # which is equivalent to zero Q entries for filtered-out tuples.
        q1 = [sum(1 for (i, j) in matches if i == a) for a in range(n1)]
        q2 = [sum(1 for (i, j) in matches if j == b) for b in range(n2)]
        v1 = sum((q / n2 - rho) ** 2 for q in q1) / (n1 - 1)
        v2 = sum((q / n1 - rho) ** 2 for q in q2) / (n2 - 1)
        assert node.variance == pytest.approx(v1 / n1 + v2 / n2, rel=1e-12)

    def test_scan_matches_bernoulli_form(self):
        db = tiny_db()
        samples = full_sample_db(db)
        planned = Optimizer(db).plan_sql("SELECT * FROM ta WHERE v = 1")
        estimate = SelectivityEstimator(samples, planned).estimate()
        node = estimate.per_node[planned.root.op_id]
        rho = 3 / 6
        assert node.mean == pytest.approx(rho)
        assert node.variance == pytest.approx(rho * (1 - rho) / 6, rel=1e-12)

    def test_full_sample_estimate_is_exact(self):
        """SR = 1 means the 'estimate' equals the true selectivity."""
        db = tiny_db()
        samples = full_sample_db(db)
        optimizer = Optimizer(db)
        executor = Executor(db)
        for sql in (
            "SELECT * FROM ta WHERE v = 0",
            "SELECT * FROM ta, tb WHERE ta.k = tb.k",
            "SELECT * FROM ta, tb WHERE ta.k = tb.k AND tb.w = 1",
        ):
            planned = optimizer.plan_sql(sql)
            estimate = SelectivityEstimator(samples, planned).estimate()
            node = estimate.resolve(planned.root.op_id)
            result = executor.execute(planned)
            truth = result.cardinalities[planned.root.op_id] / planned.leaf_row_product(
                planned.root
            )
            assert node.mean == pytest.approx(truth, rel=1e-12)

    def test_three_way_join_q_counters(self):
        """Three-relation chain: per-relation components are all exact."""
        schema_c = Schema([Column("k", ColumnType.INT)])
        db = tiny_db()
        db.add_table(
            Table("tc", schema_c, {"k": np.array([1, 2, 2], dtype=np.int64)})
        )
        samples = full_sample_db(db)
        planned = Optimizer(db).plan_sql(
            "SELECT * FROM ta, tb, tc WHERE ta.k = tb.k AND tb.k = tc.k"
        )
        estimate = SelectivityEstimator(samples, planned).estimate()
        node = estimate.resolve(planned.root.op_id)

        a = db.table("ta").column("k").tolist()
        b = db.table("tb").column("k").tolist()
        c = db.table("tc").column("k").tolist()
        matches = [
            (i, j, l)
            for i in range(len(a))
            for j in range(len(b))
            for l in range(len(c))
            if a[i] == b[j] == c[l]
        ]
        total = len(a) * len(b) * len(c)
        rho = len(matches) / total
        assert node.mean == pytest.approx(rho, rel=1e-12)

        sizes = {"ta": len(a), "tb": len(b), "tc": len(c)}
        index_of = {"ta": 0, "tb": 1, "tc": 2}
        for alias, n_k in sizes.items():
            others = total / n_k
            position = index_of[alias]
            q = [
                sum(1 for m in matches if m[position] == row)
                for row in range(n_k)
            ]
            v_k = sum((qj / others - rho) ** 2 for qj in q) / (n_k - 1)
            assert node.var_components[alias] == pytest.approx(
                v_k / n_k, rel=1e-12
            )
