"""The HTTP front-end: wire fidelity, error taxonomy, admission.

The load-bearing assertion is `test_http_batch_bitwise_identical`: a
batch of TPC-H template queries served over HTTP must be **bitwise**
equal — means, variances, interval bounds — to the same batch through
the in-process :class:`repro.api.Session`, the acceptance criterion of
the serving front-end.
"""

import threading
import urllib.request

import pytest

from repro.api import (
    ApiError,
    HttpClient,
    Session,
    SessionConfig,
    build_server,
)
from repro.api.http import status_for_error
from repro.api.wire import (
    SCHEMA_VERSION,
    BatchRequest,
    Observation,
    PredictRequest,
    dumps,
)
from repro.errors import (
    OptimizerError,
    ReproError,
    SqlParseError,
    WireError,
)
from repro.util import ensure_rng
from repro.workloads.tpch_templates import TPCH_TEMPLATES

SQL = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"


@pytest.fixture(scope="module")
def session(tpch_db, calibrated_units):
    return Session.from_components(
        tpch_db,
        calibrated_units,
        SessionConfig(sampling_ratio=0.05, sampling_seed=3),
    )


@pytest.fixture(scope="module")
def server(session):
    bound = build_server(session, port=0, max_in_flight=4)
    thread = threading.Thread(target=bound.serve_forever, daemon=True)
    thread.start()
    yield bound
    bound.shutdown()
    bound.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def client(server):
    return HttpClient(server.url, timeout=30.0)


def template_queries(count=8):
    rng = ensure_rng(17)
    return [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(count)
    ]


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["max_in_flight"] == 4

    def test_predict_round_trip(self, client, session):
        over_http = client.predict(SQL)
        in_process = session.predict(SQL)
        assert over_http.results == in_process.results

    def test_stats_endpoint_decodes_to_report(self, client):
        report = client.stats()
        assert report.stats.queries_served >= 1
        assert report.sampling_bytes_budget > 0

    def test_http_batch_bitwise_identical(self, client, session):
        """Acceptance: HTTP == in-process, bitwise, for a template batch."""
        queries = template_queries()
        request = BatchRequest(
            queries=tuple(queries), variants=("all", "nocov"),
            mpls=(1, 4), confidences=(0.5, 0.9, 0.99),
        )
        over_http = client.predict_batch(request)
        in_process = session.predict_batch(request)
        assert len(over_http) == len(queries)
        assert not over_http.failures
        for remote, local in zip(over_http, in_process):
            assert remote.sql == local.sql
            for got, expected in zip(remote.results, local.results):
                # == on the frozen dataclasses is exact float equality:
                # means, variances, stds, and every interval bound.
                assert got == expected

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ApiError) as caught:
            client.request_json("GET", "/v2/predict")
        assert caught.value.status == 404
        assert caught.value.code == "not-found"

    def test_unsupported_method_405(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/predict", data=b"{}", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 405


class TestErrorTaxonomy:
    def test_malformed_sql_is_400_with_parser_message(self, client):
        with pytest.raises(ApiError) as caught:
            client.predict("SELEC nope")
        error = caught.value
        assert error.status == 400
        assert error.code == "sql-parse"
        assert "expected SELECT" in error.remote_message

    def test_bad_json_body_is_400(self, client):
        request = urllib.request.Request(
            f"{client.base_url}/v1/predict", data=b"not json {",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400

    def test_missing_body_is_400(self, client):
        with pytest.raises(ApiError) as caught:
            client.request_json("POST", "/v1/predict")
        assert caught.value.status == 400

    def test_invalid_fanout_payload_is_400(self, client):
        for payload in (
            {"sql": SQL, "variants": ["warp-speed"]},
            {"sql": SQL, "mpls": [0]},
            {"sql": SQL, "confidences": [1.5]},
        ):
            with pytest.raises(ApiError) as caught:
                client.request_json("POST", "/v1/predict", payload)
            assert caught.value.status == 400
            assert caught.value.code == "bad-request"

    def test_foreign_schema_version_is_400(self, client):
        with pytest.raises(ApiError) as caught:
            client.request_json(
                "POST", "/v1/predict",
                {"sql": SQL, "schema_version": SCHEMA_VERSION + 1},
            )
        assert caught.value.status == 400
        assert caught.value.code == "schema-version"

    def test_batch_failures_carry_codes_not_500s(self, client):
        batch = client.predict_batch([SQL, "SELEC nope"])
        assert len(batch) == 1
        (failure,) = batch.failures
        assert failure.index == 1
        assert failure.code == "sql-parse"

    def test_status_mapping(self):
        assert status_for_error(SqlParseError("x")) == 400
        assert status_for_error(WireError("x")) == 400
        assert status_for_error(OptimizerError("x")) == 422
        assert status_for_error(ReproError("x")) == 422
        assert status_for_error(RuntimeError("x")) == 500

    def test_unknown_table_is_422_catalog(self, client):
        # Parseable SQL the catalog refuses: a library error, not a 500.
        with pytest.raises(ApiError) as caught:
            client.predict("SELECT COUNT(*) FROM nosuchtable")
        assert caught.value.status == 422
        assert caught.value.code == "catalog"
        assert "nosuchtable" in caught.value.remote_message


class TestObserveLoop:
    """The v2 observation loop over the wire vs in-process, bitwise."""

    def test_observe_then_predict_matches_in_process(
        self, client, tpch_db, calibrated_units
    ):
        # A fresh mirror session with the server's exact configuration:
        # both arms receive the identical observation stream, so their
        # corrected predictions must stay byte-identical throughout.
        mirror = Session.from_components(
            tpch_db,
            calibrated_units,
            SessionConfig(sampling_ratio=0.05, sampling_seed=3),
        )
        tenant = "wire-parity"
        request = PredictRequest(sql=SQL, tenant=tenant, confidences=(0.5, 0.9))
        # Warm the prepared cache on both arms so ``prepare_was_cached``
        # agrees below regardless of what earlier tests served.
        client.predict(request)
        mirror.predict(request)
        base_http = client.predict(request)
        base_local = mirror.predict(request)
        assert dumps(base_http.to_dict()) == dumps(base_local.to_dict())
        assert base_http.feedback is None
        (result,) = base_http.results

        rng = ensure_rng(29)
        ack_http = None
        for _ in range(25):
            observation = Observation(
                sql=SQL,
                actual_seconds=result.mean * float(rng.uniform(0.5, 2.0)),
                tenant=tenant,
                predicted_mean=result.mean,
                predicted_std=result.std,
                variant=result.variant,
                mpl=result.mpl,
            )
            ack_http = client.observe(observation)
            ack_local = mirror.observe(observation)
            assert dumps(ack_http.to_dict()) == dumps(ack_local.to_dict())
        assert ack_http.active
        assert ack_http.observations == 25

        corrected_http = client.predict(request)
        corrected_local = mirror.predict(request)
        assert dumps(corrected_http.to_dict()) == dumps(
            corrected_local.to_dict()
        )
        assert corrected_http.feedback is not None
        assert corrected_http.feedback.tenant == tenant
        # The conformal correction actually moved the served intervals.
        assert dumps(corrected_http.to_dict()) != dumps(base_http.to_dict())

        # Tenant isolation over the wire: the default tenant still
        # serves the untouched static profile on both arms.
        untouched = PredictRequest(sql=SQL, confidences=(0.5, 0.9))
        default_http = client.predict(untouched)
        assert dumps(default_http.to_dict()) == dumps(
            mirror.predict(untouched).to_dict()
        )
        assert default_http.feedback is None

    def test_observe_surfaces_in_v2_stats(self, client):
        record = client.request_json("GET", "/v1/stats?schema_version=2")
        assert record["schema_version"] == SCHEMA_VERSION
        feedback = record["feedback"]
        assert feedback["observations"] >= 25
        assert any(
            t["tenant"] == "wire-parity" for t in feedback["tenants"]
        )
        # The unversioned form stays the flat v1 report for deployed
        # monitors; no v2 sections leak in.
        v1_record = client.request_json("GET", "/v1/stats")
        assert v1_record["schema_version"] == 1
        assert "feedback" not in v1_record


class TestAdmission:
    def test_over_capacity_is_503_with_retry_after(self, server, client):
        # Deterministic: drain every admission slot directly, then ask.
        taken = 0
        while server.admit():
            taken += 1
        assert taken == server.max_in_flight
        try:
            with pytest.raises(ApiError) as caught:
                client.predict(SQL)
            assert caught.value.status == 503
            assert caught.value.code == "over-capacity"
        finally:
            for _ in range(taken):
                server.release()
        # slots restored: serving works again
        assert client.predict(SQL).results

    def test_health_probes_never_metered(self, server, client):
        taken = 0
        while server.admit():
            taken += 1
        try:
            assert client.healthz()["status"] == "ok"
            assert client.stats().stats.queries_served >= 1
        finally:
            for _ in range(taken):
                server.release()

    def test_concurrent_batches_agree_with_serial(self, client, session):
        """4 threads x same batch: every response bitwise-identical."""
        queries = template_queries(4)
        expected = session.predict_batch(queries)
        results = [None] * 4
        errors = []

        def drive(slot):
            try:
                results[slot] = client.predict_batch(queries)
            except Exception as error:  # noqa: BLE001 — assert below
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for batch in results:
            assert batch is not None
            for remote, local in zip(batch, expected):
                assert remote.results == local.results
