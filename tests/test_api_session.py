"""The Session facade: config, defaults, lifecycle, engine agreement."""

import pytest

from repro.api import PredictRequest, Session, SessionConfig
from repro.core import Variant
from repro.errors import SessionError, SqlError
from repro.service import PredictionService, ServiceReport, ServiceStats


@pytest.fixture(scope="module")
def session(tpch_db, calibrated_units):
    return Session.from_components(
        tpch_db,
        calibrated_units,
        SessionConfig(sampling_ratio=0.05, sampling_seed=3),
    )


SQL_A = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"
SQL_B = (
    "SELECT COUNT(*) FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 150000"
)


class TestSessionConfig:
    def test_defaults_validate(self):
        config = SessionConfig()
        assert config.estimator == "sampling"
        assert config.variants() == (Variant.ALL,)

    def test_round_trip_with_unknown_fields(self):
        config = SessionConfig(
            scale_factor=0.01, default_variants=("all", "nocov"),
            default_mpls=(1, 4), estimator="histogram",
        )
        record = config.to_dict()
        record["future_knob"] = True
        assert SessionConfig.from_dict(record) == config

    @pytest.mark.parametrize(
        "changes",
        [
            {"machine": "PC99"},
            {"estimator": "tarot"},
            {"sampling_ratio": 0.0},
            {"scale_factor": -1.0},
            {"calibration_repetitions": 1},
            {"default_variants": ()},
            {"default_variants": ("warp",)},
            {"default_mpls": (0,)},
            {"default_confidences": (1.5,)},
        ],
    )
    def test_invalid_configs_rejected(self, changes):
        with pytest.raises(SessionError):
            SessionConfig(**changes)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(SessionError):
            SessionConfig.from_dict("scale_factor: 1")


class TestSessionServing:
    def test_predict_matches_the_engine(self, session):
        """The facade is a typed view over PredictionService, not a fork."""
        response = session.predict(SQL_A)
        engine = session.service.predict_query(SQL_A)
        result = engine.result(Variant.ALL, 1)
        cell = response.result("all", 1)
        assert cell.mean == result.mean
        assert cell.variance == result.distribution.variance
        interval = cell.interval(0.9)
        assert (interval.low, interval.high) == result.confidence_interval(0.9)

    def test_request_overrides_config_defaults(self, session):
        response = session.predict(
            PredictRequest(
                sql=SQL_A, variants=("all", "nocov"), mpls=(1, 4),
                confidences=(0.8,),
            )
        )
        assert {(r.variant, r.mpl) for r in response.results} == {
            ("all", 1), ("all", 4), ("nocov", 1), ("nocov", 4),
        }
        assert [i.confidence for i in response.results[0].intervals] == [0.8]

    def test_config_defaults_apply(self, tpch_db, calibrated_units):
        fanned = Session.from_components(
            tpch_db, calibrated_units,
            SessionConfig(
                sampling_seed=3, default_variants=("nocov",),
                default_mpls=(2,), default_confidences=(0.5,),
            ),
        )
        response = fanned.predict(SQL_A)
        assert [(r.variant, r.mpl) for r in response.results] == [("nocov", 2)]

    def test_bad_fanout_rejected_at_request_construction(self, session):
        from repro.errors import WireError

        with pytest.raises(WireError):
            session.predict(PredictRequest(sql=SQL_A, mpls=(0,)))
        with pytest.raises(WireError):
            session.predict(PredictRequest(sql=SQL_A, confidences=(2.0,)))

    def test_bad_fanout_rejected_by_session_guard(self, session):
        # Defense in depth: the session re-checks resolved fan-outs (via
        # the single wire validator) even for callers that bypass the
        # wire objects' own validation.
        from repro.errors import WireError

        with pytest.raises(WireError):
            session._fanout(None, (0,), None)
        with pytest.raises(WireError):
            session._fanout(None, None, (2.0,))

    def test_batch_skips_failures_with_codes(self, session):
        batch = session.predict_batch([SQL_A, "SELEC nope", SQL_B])
        assert len(batch) == 2
        assert [response.sql for response in batch] == [SQL_A, SQL_B]
        (failure,) = batch.failures
        assert failure.index == 1 and failure.code == "sql-parse"
        assert batch.stats.queries_served == 2

    def test_batch_abort_mode_raises(self, session):
        from repro.api.wire import BatchRequest

        with pytest.raises(SqlError):
            session.predict_batch(
                BatchRequest(queries=(SQL_A, "SELEC nope"), skip_failures=False)
            )

    def test_explain_and_plan(self, session):
        assert "SeqScan" in session.explain(SQL_A)
        assert session.plan(SQL_A).root is not None

    def test_stats_snapshot(self, session):
        from repro.api.wire import StatsSnapshot

        snapshot = session.stats()
        assert isinstance(snapshot, StatsSnapshot)
        assert isinstance(snapshot.report, ServiceReport)
        # the delegated ServiceReport surface keeps old callers working
        assert snapshot.stats.queries_served >= 1
        assert snapshot.sampling_bytes_budget > 0
        assert snapshot.feedback is not None
        assert snapshot.feedback.observations == 0


class TestSessionLifecycle:
    def test_warmup_then_serve_hits_cache(self, tpch_db, calibrated_units):
        fresh = Session.from_components(
            tpch_db, calibrated_units, SessionConfig(sampling_seed=3)
        )
        warmed = fresh.warmup([SQL_A, SQL_B])
        assert warmed == 2
        response = fresh.predict(SQL_A)
        assert response.prepare_was_cached

    def test_default_warmup_uses_templates(self, tpch_db, calibrated_units):
        fresh = Session.from_components(
            tpch_db, calibrated_units, SessionConfig(sampling_seed=3)
        )
        assert fresh.warmup() > 0

    def test_close_is_terminal_and_idempotent(self, tpch_db, calibrated_units):
        closing = Session.from_components(
            tpch_db, calibrated_units, SessionConfig(sampling_seed=3)
        )
        closing.predict(SQL_A)
        assert len(closing.service.prepared_cache) == 1
        closing.close()
        closing.close()
        assert closing.closed
        # both cache layers dropped their (potentially large) artifacts
        assert len(closing.service.prepared_cache) == 0
        assert len(closing.service.sampling_engine) == 0
        with pytest.raises(SessionError):
            closing.predict(SQL_A)
        with pytest.raises(SessionError):
            closing.warmup([SQL_A])

    def test_context_manager_closes(self, tpch_db, calibrated_units):
        with Session.from_components(
            tpch_db, calibrated_units, SessionConfig(sampling_seed=3)
        ) as scoped:
            scoped.predict(SQL_A)
        assert scoped.closed

    def test_components_session_has_no_simulator(self, session):
        with pytest.raises(SessionError):
            _ = session.simulator


class TestHitRateConsistency:
    """Satellite: both stats layers say None (not 0.0) on zero traffic."""

    def test_zero_traffic_is_none(self):
        assert ServiceStats().prepare_hit_rate is None

    def test_matches_cache_stats_semantics(self, tpch_db, calibrated_units):
        from repro.caching import CacheStats

        assert CacheStats().hit_rate is None
        service = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
        )
        assert service.stats.prepare_hit_rate is None
        assert service.prepared_cache.stats.hit_rate is None
        service.predict_query(SQL_A)
        assert service.stats.prepare_hit_rate == 0.0
        service.predict_query(SQL_A)
        assert service.stats.prepare_hit_rate == 0.5
