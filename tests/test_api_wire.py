"""The versioned wire schema round-trips bitwise and rejects bad input.

Every object that crosses the HTTP boundary must survive
``to_dict -> json -> from_dict`` **exactly** (Python float repr is
lossless), tolerate unknown fields, refuse foreign schema versions, and
never emit NaN/inf (a variance-0 point mass serializes as plain zeros).
"""

import json

import pytest

from repro.api.wire import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    AdmissionStats,
    BatchRequest,
    BatchResponse,
    FeedbackApplied,
    IntervalPayload,
    Observation,
    ObserveResponse,
    PredictRequest,
    PredictResponse,
    ResultPayload,
    StatsSnapshot,
    cache_stats_from_dict,
    cache_stats_to_dict,
    check_emit_version,
    check_schema_version,
    dumps,
    error_body,
    feedback_stats_from_dict,
    feedback_stats_to_dict,
    loads,
    query_failure_from_dict,
    query_failure_to_dict,
    service_report_from_dict,
    service_report_to_dict,
    service_stats_from_dict,
    service_stats_to_dict,
)
from repro.feedback import FeedbackStats, TenantFeedback
from repro.caching import CacheStats
from repro.errors import (
    PredictionError,
    SqlParseError,
    WireError,
    error_code,
)
from repro.service import QueryFailure, ServiceReport, ServiceStats
from repro.util import ensure_rng


def rt(record):
    """One JSON round-trip of a wire dict, strict mode."""
    return json.loads(dumps(record))


def random_response(rng, sql="SELECT 1", point_mass=False) -> PredictResponse:
    """A synthetic response with adversarial float values."""
    results = []
    for variant, mpl in (("all", 1), ("nocov", 4)):
        if point_mass:
            mean, variance, std = float(rng.uniform(0, 10)), 0.0, 0.0
        else:
            mean = float(rng.uniform(0, 1000))
            std = float(rng.uniform(0, 50))
            variance = std * std
        intervals = tuple(
            IntervalPayload(c, mean - std, mean + std) for c in (0.5, 0.9)
        )
        results.append(
            ResultPayload(
                variant=variant, mpl=mpl, mean=mean, variance=variance,
                std=std, intervals=intervals,
            )
        )
    return PredictResponse(
        sql=sql, results=tuple(results),
        prepare_was_cached=bool(rng.integers(2)),
    )


class TestRequests:
    def test_predict_request_round_trip(self):
        request = PredictRequest(
            sql="SELECT 1", variants=("all", "nocov"), mpls=(1, 4),
            confidences=(0.5, 0.99),
        )
        assert PredictRequest.from_dict(rt(request.to_dict())) == request

    def test_defaults_stay_none_on_the_wire(self):
        request = PredictRequest(sql="SELECT 1")
        record = request.to_dict()
        assert "variants" not in record and "mpls" not in record
        assert PredictRequest.from_dict(rt(record)) == request

    def test_batch_request_round_trip(self):
        batch = BatchRequest(
            queries=("SELECT 1", "SELECT 2"), mpls=(1, 2),
            skip_failures=False,
        )
        assert BatchRequest.from_dict(rt(batch.to_dict())) == batch

    def test_empty_sql_rejected(self):
        with pytest.raises(WireError):
            PredictRequest(sql="   ")
        with pytest.raises(WireError):
            PredictRequest.from_dict({"schema_version": SCHEMA_VERSION})

    def test_invalid_fanout_is_a_payload_error(self):
        """Bad variants/mpls/confidences are WireErrors (HTTP 400), not
        engine errors (which would surface as 422)."""
        with pytest.raises(WireError):
            PredictRequest(sql="SELECT 1", variants=("warp-speed",))
        with pytest.raises(WireError):
            PredictRequest(sql="SELECT 1", mpls=(0,))
        with pytest.raises(WireError):
            PredictRequest(sql="SELECT 1", confidences=(1.5,))
        with pytest.raises(WireError):
            BatchRequest(queries=("SELECT 1",), variants=("warp-speed",))

    def test_bad_mpls_payload_rejected(self):
        with pytest.raises(WireError):
            PredictRequest.from_dict({"sql": "SELECT 1", "mpls": "1,2"})
        with pytest.raises(WireError):
            PredictRequest.from_dict({"sql": "SELECT 1", "mpls": ["one"]})


class TestResponses:
    def test_property_round_trip_random_responses(self):
        """Many random responses survive JSON bitwise, dataclass-equal."""
        rng = ensure_rng(1234)
        for case in range(50):
            response = random_response(rng, sql=f"SELECT {case}")
            decoded = PredictResponse.from_dict(rt(response.to_dict()))
            assert decoded == response  # exact float equality via __eq__

    def test_point_mass_serializes_nan_inf_free(self):
        """Variance-0 responses emit only finite JSON numbers."""
        rng = ensure_rng(7)
        response = random_response(rng, point_mass=True)
        text = dumps(response.to_dict())
        assert "NaN" not in text and "Infinity" not in text
        decoded = PredictResponse.from_dict(json.loads(text))
        assert decoded == response
        assert decoded.results[0].variance == 0.0
        assert decoded.results[0].std == 0.0

    def test_non_finite_values_refused_at_serialization(self):
        payload = ResultPayload(
            variant="all", mpl=1, mean=float("nan"), variance=1.0,
            std=1.0, intervals=(),
        )
        with pytest.raises(WireError):
            payload.to_dict()
        with pytest.raises(WireError):
            dumps({"schema_version": SCHEMA_VERSION, "value": float("inf")})

    def test_result_lookup_and_interval_lookup(self):
        rng = ensure_rng(3)
        response = random_response(rng)
        cell = response.result("nocov", 4)
        assert cell.variant == "nocov" and cell.mpl == 4
        assert cell.interval(0.9).confidence == 0.9
        with pytest.raises(WireError):
            response.result("all", 99)
        with pytest.raises(WireError):
            cell.interval(0.42)

    def test_unknown_fields_tolerated(self):
        rng = ensure_rng(11)
        record = random_response(rng).to_dict()
        record["deployment_zone"] = "us-east-1"
        record["results"][0]["novel_diagnostic"] = {"depth": 3}
        decoded = PredictResponse.from_dict(record)
        assert decoded.results[0].mean == record["results"][0]["mean"]


class TestSchemaVersion:
    def test_supported_versions_accepted(self):
        for version in SUPPORTED_SCHEMA_VERSIONS:
            assert check_schema_version({"schema_version": version}) == version
        # absent -> assumed current
        assert check_schema_version({}) == SCHEMA_VERSION

    @pytest.mark.parametrize("version", [0, 3, 99, "1.0", "2", True, None])
    def test_foreign_version_rejected(self, version):
        with pytest.raises(WireError) as caught:
            check_schema_version({"schema_version": version})
        assert caught.value.code == "schema-version"

    @pytest.mark.parametrize("version", [0, 3, "2", None])
    def test_foreign_emit_version_rejected(self, version):
        with pytest.raises(WireError) as caught:
            check_emit_version(version)
        assert caught.value.code == "schema-version"

    def test_rejection_covers_every_top_level_reader(self):
        foreign = {"schema_version": SCHEMA_VERSION + 1}
        for reader in (
            PredictRequest.from_dict,
            BatchRequest.from_dict,
            PredictResponse.from_dict,
            BatchResponse.from_dict,
            Observation.from_dict,
            ObserveResponse.from_dict,
            StatsSnapshot.from_dict,
            service_report_from_dict,
        ):
            with pytest.raises(WireError):
                reader(dict(foreign))


class TestServiceRecords:
    def test_query_failure_round_trip(self):
        failure = QueryFailure(
            index=3, sql="SELEC nope",
            error="SqlParseError: expected SELECT", code="sql-parse",
        )
        assert query_failure_from_dict(rt(query_failure_to_dict(failure))) == failure

    def test_query_failure_none_sql(self):
        failure = QueryFailure(index=0, sql=None, error="boom")
        decoded = query_failure_from_dict(rt(query_failure_to_dict(failure)))
        assert decoded.sql is None and decoded.code == "internal"

    def test_service_stats_round_trip_and_null_hit_rate(self):
        idle = ServiceStats()
        record = rt(service_stats_to_dict(idle))
        assert record["prepare_hit_rate"] is None  # JSON null, not 0.0
        assert service_stats_from_dict(record) == idle

        busy = ServiceStats(
            queries_served=7, queries_failed=1, plans_built=4,
            prepares_run=3, prepare_cache_hits=9, assemblies=28,
        )
        record = rt(service_stats_to_dict(busy))
        assert record["prepare_hit_rate"] == pytest.approx(9 / 12)
        assert service_stats_from_dict(record) == busy

    def test_cache_stats_round_trip(self):
        stats = CacheStats(hits=5, misses=3, evictions=2, oversized=1)
        assert cache_stats_from_dict(rt(cache_stats_to_dict(stats))) == stats
        assert rt(cache_stats_to_dict(CacheStats()))["hit_rate"] is None

    def test_service_report_round_trip(self):
        report = ServiceReport(
            stats=ServiceStats(queries_served=2, prepares_run=2),
            prepared_cache=CacheStats(hits=1, misses=2),
            prepared_entries=2,
            sampling_cache=CacheStats(hits=40, misses=8, evictions=3),
            sampling_entries=12,
            sampling_bytes_used=4096,
            sampling_bytes_budget=1 << 20,
        )
        decoded = service_report_from_dict(rt(service_report_to_dict(report)))
        assert decoded == report
        # and the rendering helpers still work on the decoded copy
        assert "prepared cache" in "\n".join(decoded.cache_lines())

    def test_batch_response_round_trip(self):
        rng = ensure_rng(99)
        batch = BatchResponse(
            responses=(random_response(rng), random_response(rng, "SELECT 2")),
            failures=(QueryFailure(1, "SELEC", "parse", code="sql-parse"),),
            elapsed_seconds=0.125,
            stats=ServiceStats(queries_served=2, prepares_run=2),
        )
        assert BatchResponse.from_dict(rt(batch.to_dict())) == batch


class TestErrorBodies:
    def test_error_body_carries_stable_code(self):
        body = error_body(SqlParseError("expected SELECT at position 0"))
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["error"]["code"] == "sql-parse"
        assert body["error"]["type"] == "SqlParseError"
        assert "expected SELECT" in body["error"]["message"]

    def test_error_codes_cover_the_hierarchy(self):
        assert error_code(SqlParseError("x")) == "sql-parse"
        assert error_code(PredictionError("x")) == "prediction"
        assert error_code(WireError("x")) == "bad-request"
        assert error_code(WireError("x", code="schema-version")) == "schema-version"
        assert error_code(ValueError("x")) == "internal"

    def test_loads_rejects_non_json_and_non_objects(self):
        with pytest.raises(WireError) as caught:
            loads(b"not json {")
        assert caught.value.code == "bad-json"
        with pytest.raises(WireError):
            loads(b"[1, 2, 3]")


def sample_feedback_stats() -> FeedbackStats:
    return FeedbackStats(
        observations=40,
        drifts_detected=1,
        tenants=(
            TenantFeedback(
                tenant="default", observations=25, window_fill=25,
                active=True, drifts_detected=1, last_drift_observation=12,
                scale=1.75,
            ),
            TenantFeedback(
                tenant="reporting", observations=15, window_fill=15,
                active=False, drifts_detected=0,
                last_drift_observation=None, scale=None,
            ),
        ),
    )


class TestObservations:
    def test_observation_round_trip(self):
        observation = Observation(
            sql="SELECT 1", actual_seconds=2.5, tenant="reporting",
            predicted_mean=2.0, predicted_std=0.5, variant="nocov", mpl=4,
        )
        assert Observation.from_dict(rt(observation.to_dict())) == observation

    def test_observation_without_prediction_round_trips(self):
        observation = Observation(sql="SELECT 1", actual_seconds=0.25)
        record = observation.to_dict()
        assert "predicted_mean" not in record
        assert Observation.from_dict(rt(record)) == observation

    def test_observation_is_v2_only(self):
        observation = Observation(sql="SELECT 1", actual_seconds=1.0)
        with pytest.raises(WireError) as caught:
            observation.to_dict(1)
        assert caught.value.code == "schema-version"
        record = observation.to_dict()
        record["schema_version"] = 1
        with pytest.raises(WireError) as caught:
            Observation.from_dict(record)
        assert caught.value.code == "schema-version"

    def test_observation_validation(self):
        with pytest.raises(WireError):
            Observation(sql="  ", actual_seconds=1.0)
        with pytest.raises(WireError):
            Observation(sql="SELECT 1", actual_seconds=-1.0)
        with pytest.raises(WireError):  # mean without std
            Observation(sql="SELECT 1", actual_seconds=1.0, predicted_mean=2.0)
        with pytest.raises(WireError):
            Observation(
                sql="SELECT 1", actual_seconds=1.0,
                predicted_mean=1.0, predicted_std=-0.5,
            )

    def test_observe_response_round_trip(self):
        for scale in (None, 1.25):
            ack = ObserveResponse(
                tenant="default", observations=21, window_fill=21,
                active=True, drift_detected=False, drifts_total=0,
                scale=scale,
            )
            assert ObserveResponse.from_dict(rt(ack.to_dict())) == ack


class TestCrossVersion:
    """v1 emission is the explicit down-conversion the server performs."""

    def test_v1_request_form_has_no_v2_fields(self):
        request = PredictRequest(sql="SELECT 1", confidences=(0.9,))
        record = request.to_dict(1)
        assert record["schema_version"] == 1
        assert "tenant" not in record
        assert PredictRequest.from_dict(rt(record)) == request

    def test_tenant_cannot_be_emitted_at_v1(self):
        request = PredictRequest(sql="SELECT 1", tenant="reporting")
        with pytest.raises(WireError) as caught:
            request.to_dict(1)
        assert caught.value.code == "schema-version"
        batch = BatchRequest(queries=("SELECT 1",), tenant="reporting")
        with pytest.raises(WireError):
            batch.to_dict(1)

    def test_v1_reader_ignores_tenant(self):
        """A v1 server's tolerance: the field is unknown, not an error."""
        record = PredictRequest(sql="SELECT 1", tenant="reporting").to_dict()
        record["schema_version"] = 1
        decoded = PredictRequest.from_dict(record)
        assert decoded.tenant is None

    def test_response_down_conversion_drops_feedback(self):
        rng = ensure_rng(21)
        base = random_response(rng)
        annotated = PredictResponse(
            sql=base.sql, results=base.results,
            prepare_was_cached=base.prepare_was_cached,
            feedback=FeedbackApplied(
                tenant="default", observations=30,
                scales=((0.5, 0.9), (0.9, None)),
            ),
        )
        v1 = annotated.to_dict(1)
        assert v1["schema_version"] == 1 and "feedback" not in v1
        # byte-identical to the same response never annotated
        assert dumps(v1) == dumps(base.to_dict(1))
        v2 = annotated.to_dict()
        assert PredictResponse.from_dict(rt(v2)) == annotated
        assert PredictResponse.from_dict(rt(v2)).feedback.scales[1][1] is None

    def test_batch_response_version_threads_to_members(self):
        rng = ensure_rng(5)
        batch = BatchResponse(
            responses=(random_response(rng),), failures=(),
            elapsed_seconds=0.5, stats=ServiceStats(queries_served=1),
        )
        record = batch.to_dict(1)
        assert record["schema_version"] == 1
        assert record["responses"][0]["schema_version"] == 1

    def test_stats_snapshot_cross_version(self):
        report = ServiceReport(
            stats=ServiceStats(queries_served=2, prepares_run=2),
            prepared_cache=CacheStats(hits=1, misses=2),
            prepared_entries=2,
            sampling_cache=CacheStats(hits=4, misses=1),
            sampling_entries=3,
            sampling_bytes_used=1024,
            sampling_bytes_budget=1 << 20,
        )
        snapshot = StatsSnapshot(
            report=report,
            admission=AdmissionStats(
                capacity=8, in_flight=1, admitted_total=10, refused_total=2
            ),
            feedback=sample_feedback_stats(),
        )
        # v1: exactly the flat report a pre-feedback server wrote
        v1 = snapshot.to_dict(1)
        assert dumps(v1) == dumps(service_report_to_dict(report, version=1))
        decoded_v1 = StatsSnapshot.from_dict(rt(v1))
        assert decoded_v1.admission is None and decoded_v1.feedback is None
        assert decoded_v1.report == report
        # v2: sections survive the round trip exactly
        decoded_v2 = StatsSnapshot.from_dict(rt(snapshot.to_dict()))
        assert decoded_v2 == snapshot
        assert "feedback" in snapshot.render()

    def test_feedback_section_round_trip(self):
        stats = sample_feedback_stats()
        assert feedback_stats_from_dict(rt(feedback_stats_to_dict(stats))) == stats

    def test_error_bodies_stamp_the_requested_version(self):
        body = error_body(WireError("nope"), version=1)
        assert body["schema_version"] == 1
        assert body["error"]["code"] == "bad-request"

    def test_cross_version_property_round_trip(self):
        """Random responses survive emission at every supported version."""
        rng = ensure_rng(4321)
        for case in range(25):
            response = random_response(rng, sql=f"SELECT {case}")
            for version in SUPPORTED_SCHEMA_VERSIONS:
                record = rt(response.to_dict(version))
                assert record["schema_version"] == version
                assert PredictResponse.from_dict(record) == response
