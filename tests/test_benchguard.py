"""The regression guard: tolerance bands, fingerprint gating, CLI exit
codes, and the committed baselines themselves."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.benchreport import BenchResult, Metric, environment_fingerprint

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "repro_tools_benchguard", REPO_ROOT / "tools" / "benchguard.py"
)
benchguard = importlib.util.module_from_spec(_spec)
# dataclass processing resolves cls.__module__ through sys.modules, so
# the module must be registered before execution.
sys.modules[_spec.name] = benchguard
_spec.loader.exec_module(benchguard)


def make_result(scenario="demo", **metric_values):
    metrics = {}
    for name, value in metric_values.items():
        if isinstance(value, Metric):
            metrics[name] = value
        else:
            metrics[name] = Metric(name, float(value))
    return BenchResult(
        scenario=scenario, tier="quick", seed=0, wall_seconds=1.0,
        metrics=metrics, environment=environment_fingerprint(),
    )


def regressions(findings):
    return [f for f in findings if f.regression]


class TestComparePolicy:
    def test_identical_passes(self):
        base = {"demo": make_result(rs=0.8)}
        fresh = {"demo": make_result(rs=0.8)}
        assert regressions(benchguard.compare(fresh, base)) == []

    def test_fidelity_band_two_sided(self):
        base = {"demo": make_result(rs=0.8)}
        ok = {"demo": make_result(rs=0.81)}
        assert regressions(benchguard.compare(ok, base)) == []
        for drifted in (0.8 + 0.05, 0.8 - 0.05):
            bad = {"demo": make_result(rs=drifted)}
            found = regressions(benchguard.compare(bad, base))
            assert len(found) == 1
            assert "fidelity drifted" in found[0].message

    def test_ratio_one_sided_with_slack(self):
        ratio = lambda v: Metric("speedup", v, kind="ratio")  # noqa: E731
        base = {"demo": make_result(speedup=ratio(10.0))}
        improved = {"demo": make_result(speedup=ratio(50.0))}
        assert regressions(benchguard.compare(improved, base)) == []
        within = {"demo": make_result(speedup=ratio(6.5))}
        assert regressions(benchguard.compare(within, base)) == []
        collapsed = {"demo": make_result(speedup=ratio(2.0))}
        found = regressions(benchguard.compare(collapsed, base))
        assert len(found) == 1
        assert "ratio fell" in found[0].message

    def test_ratio_hard_floor(self):
        floored = Metric("speedup", 1.2, kind="ratio", floor=1.5)
        base = {"demo": make_result(speedup=Metric(
            "speedup", 1.6, kind="ratio", floor=1.5
        ))}
        fresh = {"demo": make_result(speedup=floored)}
        found = regressions(benchguard.compare(fresh, base))
        assert any("hard floor" in f.message for f in found)

    def test_timing_loose_band(self):
        timing = lambda v: Metric("secs", v, kind="timing")  # noqa: E731
        base = {"demo": make_result(secs=timing(1.0))}
        slower_ok = {"demo": make_result(secs=timing(1.9))}
        assert regressions(benchguard.compare(slower_ok, base)) == []
        blown = {"demo": make_result(secs=timing(2.5))}
        found = regressions(benchguard.compare(blown, base))
        assert len(found) == 1
        assert "timing grew" in found[0].message

    def test_timing_skipped_across_machines(self):
        base_result = make_result(secs=Metric("secs", 1.0, kind="timing"))
        base_result.environment = dict(
            base_result.environment, cpu_count=999, machine="sparc"
        )
        fresh = {"demo": make_result(secs=Metric("secs", 99.0, kind="timing"))}
        findings = benchguard.compare(fresh, {"demo": base_result})
        assert regressions(findings) == []
        assert any("timing skipped" in f.message for f in findings)
        strict = benchguard.TolerancePolicy(strict_timings=True)
        assert regressions(
            benchguard.compare(fresh, {"demo": base_result}, strict)
        )

    def test_missing_scenario_and_metric(self):
        base = {"demo": make_result(rs=0.8), "gone": make_result(x=1.0)}
        fresh = {"demo": make_result(other=0.8)}
        found = regressions(benchguard.compare(fresh, base))
        messages = "\n".join(f.message for f in found)
        assert "scenario missing" in messages
        assert "metric missing" in messages

    def test_new_scenario_is_note_not_regression(self):
        base = {"demo": make_result(rs=0.8)}
        fresh = {"demo": make_result(rs=0.8), "new": make_result(y=1.0)}
        findings = benchguard.compare(fresh, base)
        assert regressions(findings) == []
        assert any("new scenario" in f.message for f in findings)

    def test_nan_fresh_value_is_regression(self):
        # Ordered comparisons are all False for NaN; without an explicit
        # finiteness check, a metric degrading to NaN would pass every
        # band (and every floor) silently.
        base = {"demo": make_result(rs=0.8)}
        for bad in (float("nan"), float("inf"), float("-inf")):
            fresh = {"demo": make_result(rs=bad)}
            found = regressions(benchguard.compare(fresh, base))
            assert len(found) == 1, bad
            assert "non-finite" in found[0].message

    def test_nan_never_clears_a_floor(self):
        fresh = {"new": make_result(speedup=Metric(
            "speedup", float("nan"), kind="ratio", floor=1.5
        ))}
        found = regressions(benchguard.compare(fresh, {}))
        assert len(found) == 1
        assert "hard floor" in found[0].message

    def test_nan_baseline_is_note_not_regression(self):
        base = {"demo": make_result(rs=float("nan"))}
        fresh = {"demo": make_result(rs=0.8)}
        findings = benchguard.compare(fresh, base)
        assert regressions(findings) == []
        assert any("baseline is non-finite" in f.message for f in findings)

    def test_floor_enforced_without_baseline(self):
        # Hard floors are baseline-independent: a brand-new scenario
        # landing below its own floor must not ride in green on the
        # "no baseline yet" note.
        fresh = {"new": make_result(speedup=Metric(
            "speedup", 0.8, kind="ratio", floor=1.05
        ))}
        found = regressions(benchguard.compare(fresh, {}))
        assert len(found) == 1
        assert "hard floor" in found[0].message

    def test_floor_enforced_on_new_metric_of_known_scenario(self):
        base = {"demo": make_result(rs=0.8)}
        fresh = {"demo": make_result(rs=0.8, speedup=Metric(
            "speedup", 0.9, kind="ratio", floor=2.0
        ))}
        found = regressions(benchguard.compare(fresh, base))
        assert len(found) == 1
        assert "hard floor" in found[0].message

    def test_new_failed_scenario_is_regression(self):
        failed = make_result(rs=0.8)
        failed.error = "Traceback ..."
        found = regressions(benchguard.compare({"new": failed}, {}))
        assert len(found) == 1
        assert "new scenario failed" in found[0].message

    def test_failed_scenario_is_regression(self):
        base = {"demo": make_result(rs=0.8)}
        failed = make_result(rs=0.8)
        failed.error = "Traceback ..."
        found = regressions(benchguard.compare({"demo": failed}, base))
        assert len(found) == 1
        assert "scenario failed" in found[0].message


class TestGuardCli:
    def run_guard(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "benchguard.py"),
             *argv],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )

    @pytest.fixture()
    def dirs(self, tmp_path):
        fresh_dir = tmp_path / "fresh"
        base_dir = tmp_path / "base"
        fresh_dir.mkdir()
        make_result(rs=0.8).write(fresh_dir)
        return fresh_dir, base_dir

    def test_update_then_pass_then_fail(self, dirs):
        fresh_dir, base_dir = dirs
        seeded = self.run_guard(
            "--results", str(fresh_dir), "--baselines", str(base_dir),
            "--update",
        )
        assert seeded.returncode == 0, seeded.stdout
        assert (base_dir / "BENCH_demo.json").exists()

        clean = self.run_guard(
            "--results", str(fresh_dir), "--baselines", str(base_dir)
        )
        assert clean.returncode == 0, clean.stdout
        assert "0 regressions" in clean.stdout

        # perturb a fidelity metric beyond the band -> non-zero exit
        path = fresh_dir / "BENCH_demo.json"
        record = json.loads(path.read_text())
        record["metrics"]["rs"]["value"] += 0.5
        path.write_text(json.dumps(record))
        broken = self.run_guard(
            "--results", str(fresh_dir), "--baselines", str(base_dir)
        )
        assert broken.returncode == 1
        assert "REGRESSION" in broken.stdout

    def test_missing_baselines_dir_fails(self, dirs):
        fresh_dir, base_dir = dirs
        result = self.run_guard(
            "--results", str(fresh_dir), "--baselines", str(base_dir)
        )
        assert result.returncode == 1
        assert "no baselines" in result.stdout

    def test_empty_results_dir_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        result = self.run_guard("--results", str(empty))
        assert result.returncode == 1
        assert "no fresh BENCH_" in result.stdout


class TestCommittedBaselines:
    """The baselines shipped in-repo stay loadable and complete."""

    @pytest.mark.parametrize("tier", ["quick", "full"])
    def test_baselines_cover_every_scenario(self, tier):
        from repro.benchreport import BenchRegistry, load_scenarios

        registry = load_scenarios(
            REPO_ROOT / "benchmarks", registry=BenchRegistry()
        )
        directory = REPO_ROOT / "benchmarks" / "baselines" / tier
        baselines = benchguard.load_results(directory)
        expected = {s.name for s in registry.select(tier)}
        assert expected <= set(baselines)
        for result in baselines.values():
            assert result.tier == tier
            assert result.ok
            assert result.metrics
            assert result.environment["repro_version"]
