"""The benchmark registry, runner, artifacts, and CLI wiring.

Fast tests only: scenarios here are synthetic (no labs). The real
scenarios in ``benchmarks/bench_*.py`` are exercised by ``repro bench``
itself (Makefile `bench-quick`, CI) — these tests pin the subsystem's
contracts: registration, tier selection, deterministic structured
results, artifact emission, trajectory append, and failure capture.
"""

import io
import json

import pytest

from repro.benchreport import (
    REGISTRY,
    BenchContext,
    BenchRegistry,
    BenchResult,
    Metric,
    environment_fingerprint,
    fingerprints_comparable,
    load_scenarios,
    run_scenarios,
    write_artifacts,
)
from repro.benchreport.runner import SUMMARY_FILENAME
from repro.cli import main as cli_main


def make_registry():
    registry = BenchRegistry()

    @registry.register("alpha", tags=("fast", "demo"))
    def alpha(ctx):
        return [Metric("answer", 42.0), Metric("ratio", 2.0, kind="ratio")]

    @registry.register("beta", quick=False)
    def beta(ctx):
        return {"tier_is_quick": float(ctx.quick)}

    @registry.register("broken")
    def broken(ctx):
        raise RuntimeError("scenario exploded")

    return registry


class TestRegistry:
    def test_selection_by_tier(self):
        registry = make_registry()
        quick = [s.name for s in registry.select("quick")]
        full = [s.name for s in registry.select("full")]
        assert quick == ["alpha", "broken"]
        assert full == ["alpha", "beta", "broken"]

    def test_selection_by_pattern_matches_names_and_tags(self):
        registry = make_registry()
        assert [s.name for s in registry.select("full", pattern="alp")] == ["alpha"]
        assert [s.name for s in registry.select("full", pattern="demo")] == ["alpha"]
        assert [s.name for s in registry.select("full", pattern="b*")] == [
            "beta", "broken"
        ]

    def test_explicit_names_override_tier_gate(self):
        registry = make_registry()
        assert [s.name for s in registry.select("quick", names=["beta"])] == ["beta"]

    def test_unknown_name_rejected(self):
        registry = make_registry()
        with pytest.raises(KeyError, match="unknown scenario"):
            registry.select("full", names=["nope"])

    def test_reregistration_replaces(self):
        registry = make_registry()

        @registry.register("alpha")
        def alpha_v2(ctx):
            return [Metric("answer", 43.0)]

        assert len([s for s in registry.scenarios() if s.name == "alpha"]) == 1
        assert registry.get("alpha").func is alpha_v2

    def test_unknown_tier_rejected(self):
        registry = make_registry()
        with pytest.raises(ValueError, match="unknown tier"):
            registry.select("warp")

    def test_real_bench_files_all_register(self, tmp_path):
        registry = load_scenarios(registry=BenchRegistry())
        names = registry.names()
        # every benchmarks/bench_*.py file contributes a scenario
        assert len(names) >= 21
        for expected in ("sampling_engine", "service_throughput",
                         "table4_correlations", "fig8_ablation"):
            assert expected in names
        # and the module-level registry was not polluted by the
        # injected-registry load
        assert "alpha" not in REGISTRY


class TestContext:
    def test_tier_validation(self):
        with pytest.raises(ValueError, match="unknown tier"):
            BenchContext(tier="nope")

    def test_pick(self):
        assert BenchContext(tier="quick").pick(quick=1, full=2) == 1
        assert BenchContext(tier="full").pick(quick=1, full=2) == 2

    def test_quick_counts_smaller(self):
        quick = BenchContext(tier="quick").query_counts
        full = BenchContext(tier="full").query_counts
        assert set(quick) == set(full)
        assert all(quick[k] < full[k] for k in quick)


class TestMetricAndResult:
    def test_metric_kind_validated(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Metric("x", 1.0, kind="vibes")

    def test_result_roundtrip(self, tmp_path):
        result = BenchResult(
            scenario="demo", tier="quick", seed=7, wall_seconds=1.25,
            metrics={
                "a": Metric("a", 0.5),
                "t": Metric("t", 2.0, kind="timing", unit="s"),
                "r": Metric("r", 3.0, kind="ratio", floor=1.5),
            },
            environment=environment_fingerprint(),
        )
        path = result.write(tmp_path)
        assert path.name == "BENCH_demo.json"
        loaded = BenchResult.read(path)
        assert loaded.scenario == "demo"
        assert loaded.tier == "quick"
        assert loaded.seed == 7
        assert loaded.metrics["r"].floor == 1.5
        assert loaded.metrics["t"].kind == "timing"
        assert loaded.environment == result.environment

    def test_fingerprint_fields(self):
        fingerprint = environment_fingerprint()
        for key in ("repro_version", "python", "numpy", "cpu_count"):
            assert fingerprint[key]

    def test_fingerprint_comparability(self):
        a = environment_fingerprint()
        assert fingerprints_comparable(a, dict(a))
        b = dict(a)
        b["cpu_count"] = a["cpu_count"] + 1
        assert not fingerprints_comparable(a, b)
        assert not fingerprints_comparable(a, {})


class TestRunner:
    def test_run_and_artifacts(self, tmp_path):
        registry = make_registry()
        results = run_scenarios(
            registry.select("full", names=["alpha", "beta"]), tier="full",
        )
        assert [r.scenario for r in results] == ["alpha", "beta"]
        assert all(r.ok for r in results)
        # the runner injects wall_seconds as a guardable timing metric
        assert results[0].metrics["wall_seconds"].kind == "timing"
        assert results[1].metrics["tier_is_quick"].value == 0.0
        assert results[0].environment["repro_version"]

        summary_path = write_artifacts(results, tmp_path)
        assert summary_path.name == SUMMARY_FILENAME
        assert (tmp_path / "BENCH_alpha.json").exists()
        summary = json.loads(summary_path.read_text())
        assert len(summary["runs"]) == 1
        assert summary["runs"][0]["sequence"] == 1
        assert set(summary["runs"][0]["scenarios"]) == {"alpha", "beta"}

    def test_summary_appends_trajectory(self, tmp_path):
        registry = make_registry()
        results = run_scenarios(registry.select("full", names=["alpha"]))
        write_artifacts(results, tmp_path)
        write_artifacts(results, tmp_path)
        summary = json.loads((tmp_path / SUMMARY_FILENAME).read_text())
        assert [run["sequence"] for run in summary["runs"]] == [1, 2]

    def test_failure_captured_not_raised(self):
        registry = make_registry()
        results = run_scenarios(registry.select("full", names=["broken"]))
        assert not results[0].ok
        assert "scenario exploded" in results[0].error
        assert results[0].metrics["wall_seconds"].kind == "timing"

    def test_scenario_metrics_deterministic(self):
        registry = make_registry()
        first = run_scenarios(registry.select("full", names=["alpha"]))
        second = run_scenarios(registry.select("full", names=["alpha"]))
        assert (
            {k: m.value for k, m in first[0].metrics.items() if k != "wall_seconds"}
            == {k: m.value for k, m in second[0].metrics.items() if k != "wall_seconds"}
        )


def write_fake_bench_dir(tmp_path):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_fake.py").write_text(
        "from repro.benchreport import Metric, register\n"
        "\n"
        "@register('fake', tags=('demo',))\n"
        "def scenario(ctx):\n"
        "    return [Metric('value', 1.0),\n"
        "            Metric('speed', 5.0, kind='ratio', floor=1.0)]\n"
        "\n"
        "@register('fake_full_only', quick=False)\n"
        "def scenario_full(ctx):\n"
        "    return [Metric('value', 2.0)]\n"
    )
    return bench_dir


class TestBenchCli:
    def run(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_list(self, tmp_path):
        bench_dir = write_fake_bench_dir(tmp_path)
        code, text = self.run(
            "bench", "--list", "--quick", "--bench-dir", str(bench_dir)
        )
        assert code == 0
        assert "fake" in text
        assert "fake_full_only" not in text

    def test_quick_run_writes_artifacts(self, tmp_path):
        bench_dir = write_fake_bench_dir(tmp_path)
        out_dir = tmp_path / "out"
        code, text = self.run(
            "bench", "--quick", "--bench-dir", str(bench_dir),
            "--output-dir", str(out_dir),
        )
        assert code == 0
        assert "1/1 scenarios ok" in text
        result = BenchResult.read(out_dir / "BENCH_fake.json")
        assert result.tier == "quick"
        assert result.metrics["speed"].floor == 1.0
        assert (out_dir / SUMMARY_FILENAME).exists()

    def test_full_runs_everything(self, tmp_path):
        bench_dir = write_fake_bench_dir(tmp_path)
        out_dir = tmp_path / "out"
        code, text = self.run(
            "bench", "--full", "--bench-dir", str(bench_dir),
            "--output-dir", str(out_dir),
        )
        assert code == 0
        assert "2/2 scenarios ok" in text
        assert (out_dir / "BENCH_fake_full_only.json").exists()

    def test_filter_without_match_errors(self, tmp_path):
        bench_dir = write_fake_bench_dir(tmp_path)
        code, text = self.run(
            "bench", "--quick", "--bench-dir", str(bench_dir), "-k", "zzz"
        )
        assert code == 1
        assert "no scenarios selected" in text

    def test_no_artifacts_flag(self, tmp_path):
        bench_dir = write_fake_bench_dir(tmp_path)
        out_dir = tmp_path / "out"
        code, _ = self.run(
            "bench", "--quick", "--bench-dir", str(bench_dir),
            "--output-dir", str(out_dir), "--no-artifacts",
        )
        assert code == 0
        assert not out_dir.exists()

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_jobs_survive_worker_death(self, tmp_path):
        # A scenario hard-killing its worker process (stand-in for an
        # OOM kill) must surface as a recorded failure, not an
        # unhandled exception that loses the run's artifacts.
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_killer.py").write_text(
            "import os\n"
            "from repro.benchreport import Metric, register\n"
            "\n"
            "@register('killer')\n"
            "def scenario(ctx):\n"
            "    os._exit(9)\n"
            "\n"
            "@register('innocent')\n"
            "def scenario2(ctx):\n"
            "    return [Metric('v', 1.0)]\n"
        )
        out_dir = tmp_path / "out"
        code, text = self.run(
            "bench", "--full", "--bench-dir", str(bench_dir),
            "--output-dir", str(out_dir), "--jobs", "2",
        )
        assert code == 1
        assert "FAILED killer" in text
        killed = BenchResult.read(out_dir / "BENCH_killer.json")
        assert not killed.ok
        assert "worker failed" in killed.error

    def test_jobs_fan_out(self, tmp_path):
        bench_dir = write_fake_bench_dir(tmp_path)
        out_dir = tmp_path / "out"
        code, text = self.run(
            "bench", "--full", "--bench-dir", str(bench_dir),
            "--output-dir", str(out_dir), "--jobs", "2",
        )
        assert code == 0
        assert "2/2 scenarios ok" in text
        assert BenchResult.read(
            out_dir / "BENCH_fake.json"
        ).metrics["value"].value == 1.0
