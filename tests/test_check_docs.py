"""The documentation checker works and the repo's docs pass it.

``tools/check_docs.py`` gates CI on two classes of doc rot: broken
intra-repo markdown links and fenced python examples that no longer
compile. These tests pin its behaviour on synthetic markdown and run
it over the real README/docs tree (so a broken link fails tier-1, not
just the CI stage).
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    path = REPO_ROOT / "tools" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_broken_relative_link_flagged(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [the guide](missing/guide.md) for details\n")
    problems = check_docs.check_file(doc)
    assert len(problems) == 1
    assert "missing/guide.md" in problems[0]


def test_good_relative_link_and_anchor_pass(tmp_path):
    (tmp_path / "guide.md").write_text("# guide\n")
    doc = tmp_path / "doc.md"
    doc.write_text(
        "see [the guide](guide.md), [a section](guide.md#section), "
        "[external](https://example.org), [mail](mailto:a@b.c), "
        "and [inpage](#here)\n"
    )
    assert check_docs.check_file(doc) == []


def test_links_inside_code_fences_ignored(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```console\n$ grep '[x](missing.md)' file\n```\n"
    )
    assert check_docs.check_file(doc) == []


def test_decorated_and_indented_fences_do_not_desync(tmp_path):
    """Attribute info strings and indented fences keep the toggle sane."""
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```python title=\"example\"\nx = 1\n```\n"
        "- a list item:\n"
        "  ```console\n  $ ls\n  ```\n"
        "now a real broken link: [x](gone.md)\n"
    )
    problems = check_docs.check_file(doc)
    assert len(problems) == 1 and "gone.md" in problems[0]


def test_python_block_must_compile(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```python\ndef broken(:\n    pass\n```\n"
    )
    problems = check_docs.check_file(doc)
    assert len(problems) == 1
    assert "does not compile" in problems[0]


def test_python_block_that_compiles_passes(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "```python\nfrom math import tau\nprint(tau, ...)\n```\n"
        "```json\n{\"not\": \"python\"}\n```\n"
        "```console\n$ this is shell output\n```\n"
    )
    assert check_docs.check_file(doc) == []


def test_python_block_line_numbers_point_at_the_error(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "title\n\n```python\nx = 1\ny = (\n```\n"
    )
    (problem,) = check_docs.check_file(doc)
    # the open paren on line 5 of the file is the reported location
    assert ":5:" in problem or ":6:" in problem


def test_main_exit_status(tmp_path):
    good = tmp_path / "good.md"
    good.write_text("fine\n")
    assert check_docs.main([str(good)]) == 0
    bad = tmp_path / "bad.md"
    bad.write_text("[x](nope.md)\n")
    assert check_docs.main([str(bad)]) == 1
    assert check_docs.main([str(tmp_path / "absent.md")]) == 1


def test_repo_documentation_passes():
    """README.md and docs/ must stay link-clean and compile-clean."""
    roots = [REPO_ROOT / "README.md", REPO_ROOT / "docs"]
    problems = []
    for path in check_docs.iter_markdown_files(roots):
        problems.extend(check_docs.check_file(path))
    assert not problems, "\n".join(problems)


def test_repo_docs_cover_the_doc_map():
    """The README's documentation table links every docs/ page."""
    readme = (REPO_ROOT / "README.md").read_text()
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md does not link docs/{page.name}"
        )
