"""The GitHub Actions workflow stays valid and gates what it must.

CI definitions rot silently — a bad indent or a renamed Make target
only surfaces once a PR is already red. This parses the YAML and pins
the contract: lint, staticcheck, tier-1 tests, the HTTP serving smoke,
the quick bench smoke, the regression guard, and the artifact uploads,
on both push and pull_request. The Makefile's `ci` target must mirror
the same HTTP smoke and staticcheck stages.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def steps(workflow):
    jobs = workflow["jobs"]
    assert len(jobs) == 1
    (job,) = jobs.values()
    return job["steps"]


def run_commands(workflow):
    return [step.get("run", "") for step in steps(workflow)]


def test_workflow_parses_and_has_one_job(workflow):
    assert workflow["name"] == "ci"
    assert len(workflow["jobs"]) == 1


def test_triggers_push_and_pull_request(workflow):
    # YAML 1.1 parses the bare key `on` as boolean True.
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert "push" in triggers


def test_gates_in_order(workflow):
    commands = run_commands(workflow)

    def index_of(fragment):
        matches = [i for i, cmd in enumerate(commands) if fragment in cmd]
        assert matches, f"no step runs {fragment!r}"
        return matches[0]

    lint = index_of("make lint")
    staticcheck = index_of("tools/staticcheck")
    docs = index_of("check_docs.py")
    tests = index_of("pytest -x -q")
    http_smoke = index_of("http_smoke.py")
    bench = index_of("repro bench --quick")
    guard = index_of("benchguard.py")
    assert lint < staticcheck < docs < tests < http_smoke < bench < guard


def test_http_smoke_stage(workflow):
    """The serving front-end is exercised end-to-end on every push."""
    (smoke,) = [
        cmd for cmd in run_commands(workflow) if "http_smoke.py" in cmd
    ]
    assert "python tools/http_smoke.py" in smoke


def test_make_ci_mirrors_http_smoke():
    makefile = (REPO_ROOT / "Makefile").read_text()
    ci_target = makefile.split("\nci:", 1)[1]
    assert "tools/http_smoke.py" in ci_target


def test_check_docs_stage(workflow):
    """The doc link/example checker gates every push (and make ci)."""
    (check,) = [
        cmd for cmd in run_commands(workflow) if "check_docs.py" in cmd
    ]
    assert "python tools/check_docs.py" in check
    makefile = (REPO_ROOT / "Makefile").read_text()
    ci_target = makefile.split("\nci:", 1)[1].split("\n\n", 1)[0]
    assert "check-docs" in ci_target or "check_docs.py" in ci_target


def test_staticcheck_stage(workflow):
    """Concurrency/determinism analysis annotates the PR diff."""
    (check,) = [
        cmd for cmd in run_commands(workflow) if "tools/staticcheck" in cmd
    ]
    assert "--format github" in check
    assert "--json-output staticcheck-findings.json" in check


def test_make_ci_mirrors_staticcheck():
    makefile = (REPO_ROOT / "Makefile").read_text()
    assert "\nstaticcheck:" in makefile
    ci_line = [
        line for line in makefile.splitlines() if line.startswith("ci:")
    ]
    assert ci_line and "staticcheck" in ci_line[0]


def test_bench_artifacts_uploaded(workflow):
    uploads = [
        step for step in steps(workflow)
        if "upload-artifact" in step.get("uses", "")
    ]
    assert len(uploads) == 2
    by_name = {step["with"]["name"]: step for step in uploads}
    assert "BENCH_summary.json" in by_name["bench-results"]["with"]["path"]
    assert (
        "staticcheck-findings.json"
        in by_name["staticcheck-findings"]["with"]["path"]
    )
    # uploaded even when a gate fails — that's when you want them
    for step in uploads:
        assert step["if"] == "always()"


def test_pip_cache_enabled(workflow):
    setups = [
        step for step in steps(workflow)
        if "setup-python" in step.get("uses", "")
    ]
    assert len(setups) == 1
    assert setups[0]["with"]["cache"] == "pip"


def test_guard_runs_quick_tier_against_committed_baselines(workflow):
    (guard,) = [cmd for cmd in run_commands(workflow) if "benchguard" in cmd]
    assert "--tier quick" in guard
    assert (REPO_ROOT / "benchmarks" / "baselines" / "quick").is_dir()
