"""Tests for the uncertainty core: bounds, variance assembly, predictor."""

import math

import numpy as np
import pytest

from repro.core import (
    PlanAncestry,
    ProgressIndicator,
    UncertaintyPredictor,
    Variant,
    bound_linear_linear,
    bound_square_linear,
    bound_square_square,
    g_factor,
    h_factor,
)
from repro.core.covariance import power_variance
from repro.hardware import PC2, HardwareSimulator
from repro.mathstats import NormalDistribution
from repro.sampling import NodeSelectivity


def make_selectivity(op_id, mean, variance, aliases, n=1000, components=None):
    if components is None:
        share = variance / max(len(aliases), 1)
        components = {alias: share for alias in aliases}
    return NodeSelectivity(
        op_id=op_id,
        mean=mean,
        variance=variance,
        var_components=components,
        leaf_aliases=tuple(aliases),
        sample_sizes={alias: n for alias in aliases},
        source="sample",
    )


class TestFactors:
    def test_g_factor_range(self):
        assert g_factor(0.0) == 0.0
        assert g_factor(1.0) == 0.0
        assert g_factor(0.5) == pytest.approx(0.5)

    def test_g_factor_clamps(self):
        assert g_factor(-0.1) == 0.0
        assert g_factor(1.3) == 0.0

    def test_h_ge_g(self):
        for rho in np.linspace(0.01, 0.99, 20):
            assert h_factor(rho) >= g_factor(rho)


class TestBounds:
    def pair(self):
        u = make_selectivity(0, 0.3, 1e-4, ["a", "b"])
        v = make_selectivity(1, 0.1, 4e-5, ["a", "b", "c"])
        return u, v

    def test_b1_le_b2(self):
        """Theorem 7: the restricted bound is at most Cauchy-Schwarz."""
        u, v = self.pair()
        b1 = bound_linear_linear(u, v)
        b2 = math.sqrt(u.variance * v.variance)
        assert b1 <= b2 + 1e-15

    def test_bound_zero_when_disjoint(self):
        u = make_selectivity(0, 0.3, 1e-4, ["a"])
        v = make_selectivity(1, 0.1, 4e-5, ["b"])
        assert bound_linear_linear(u, v) == 0.0

    def test_bound_zero_when_deterministic(self):
        u = make_selectivity(0, 0.3, 0.0, ["a"])
        v = make_selectivity(1, 0.1, 4e-5, ["a"])
        assert bound_linear_linear(u, v) == 0.0

    def test_bound_covers_true_covariance_mc(self):
        """Monte-Carlo: |Cov| of correlated estimators <= our bound.

        Build two scan-style estimators sharing one sample: rho (selectivity
        of A) and rho' (selectivity of A and B) computed from the same draws.
        """
        rng = np.random.default_rng(0)
        n = 400
        p_a, p_b = 0.4, 0.5
        rhos, rho_primes = [], []
        for _ in range(400):
            a = rng.random(n) < p_a
            b = rng.random(n) < p_b
            rhos.append(a.mean())
            rho_primes.append((a & b).mean())
        true_cov = abs(float(np.cov(rhos, rho_primes)[0, 1]))
        u = make_selectivity(0, p_a, p_a * (1 - p_a) / n, ["t"], n=n)
        v = make_selectivity(
            1, p_a * p_b, (p_a * p_b) * (1 - p_a * p_b) / n, ["t"], n=n
        )
        bound = bound_linear_linear(u, v)
        assert true_cov <= bound * 1.05

    def test_square_bounds_nonnegative(self):
        u, v = self.pair()
        assert bound_square_linear(u, v) >= 0
        assert bound_square_square(u, v) >= 0

    def test_power_variance_matches_normal_moments(self):
        u = make_selectivity(0, 0.3, 1e-4, ["a"])
        # Var[X^2] = E[X^4] - E[X^2]^2 for a normal
        mu, var = 0.3, 1e-4
        e4 = mu**4 + 6 * mu**2 * var + 3 * var**2
        e2 = mu**2 + var
        assert power_variance(u, 2) == pytest.approx(e4 - e2 * e2, rel=1e-9)


class TestAncestry:
    def test_relations(self, optimizer):
        planned = optimizer.plan_sql(
            "SELECT * FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
        )
        ancestry = PlanAncestry.from_plan(planned.root)
        root_id = planned.root.op_id
        scans = [node.op_id for node in planned.root.walk() if node.is_scan]
        for scan_id in scans:
            assert ancestry.related(scan_id, root_id)
            assert ancestry.related(root_id, scan_id)
        # distinct scans are unrelated, and nothing relates to itself
        assert not ancestry.related(scans[0], scans[1])
        assert not ancestry.related(root_id, root_id)


class TestPredictor:
    def predict(self, optimizer, sample_db, calibrated_units, sql, variant=Variant.ALL):
        planned = optimizer.plan_sql(sql)
        predictor = UncertaintyPredictor(calibrated_units)
        return planned, predictor.predict(planned, sample_db, variant=variant)

    def test_mean_close_to_actual(
        self, tpch_db, optimizer, executor, sample_db, calibrated_units
    ):
        sql = (
            "SELECT COUNT(*) FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey AND o_totalprice > 100000"
        )
        planned, prediction = self.predict(
            optimizer, sample_db, calibrated_units, sql
        )
        result = executor.execute(planned)
        simulator = HardwareSimulator(PC2, rng=99)
        actual = simulator.run_repeated(result.counts)
        assert prediction.mean == pytest.approx(actual, rel=0.5)
        assert prediction.std > 0

    def test_confidence_interval_contains_mean(
        self, optimizer, sample_db, calibrated_units
    ):
        _, prediction = self.predict(
            optimizer, sample_db, calibrated_units,
            "SELECT * FROM orders WHERE o_totalprice > 200000",
        )
        low, high = prediction.confidence_interval(0.9)
        assert low <= prediction.mean <= high
        assert low >= 0.0

    def test_confidence_interval_never_inverted(self):
        # Regression: only the low end used to be clamped to 0, so a
        # high-variance prediction whose Gaussian interval sits below
        # zero returned an inverted (0.0, negative) pair.
        from repro.core import PredictionResult

        prediction = PredictionResult(
            distribution=NormalDistribution(-0.5, 0.001),
            breakdown=None,
            prepared=None,
            variant=Variant.ALL,
        )
        low, high = prediction.confidence_interval(0.95)
        assert (low, high) == (0.0, 0.0)

        wide = PredictionResult(
            distribution=NormalDistribution(0.1, 4.0),
            breakdown=None,
            prepared=None,
            variant=Variant.ALL,
        )
        low, high = wide.confidence_interval(0.95)
        assert low == 0.0
        assert high > low

    def test_prob_within_is_probability(
        self, optimizer, sample_db, calibrated_units
    ):
        _, prediction = self.predict(
            optimizer, sample_db, calibrated_units,
            "SELECT * FROM orders WHERE o_totalprice > 200000",
        )
        p = prediction.prob_within(0.0, prediction.mean)
        assert 0.0 <= p <= 1.0
        assert p == pytest.approx(0.5, abs=0.05)

    def test_variance_nonnegative_everywhere(
        self, optimizer, sample_db, calibrated_units
    ):
        sqls = [
            "SELECT * FROM orders WHERE o_totalprice > 100000",
            "SELECT COUNT(*) FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
            "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-06-01'",
        ]
        for sql in sqls:
            _, prediction = self.predict(optimizer, sample_db, calibrated_units, sql)
            assert prediction.distribution.variance >= 0

    def test_breakdown_sums_to_variance(
        self, optimizer, sample_db, calibrated_units
    ):
        _, prediction = self.predict(
            optimizer, sample_db, calibrated_units,
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        )
        b = prediction.breakdown
        assert b.variance == pytest.approx(
            max(
                b.exact_selectivity_term
                + b.bounded_covariance_term
                + b.cost_unit_term,
                0.0,
            ),
            rel=1e-9,
        )

    def test_mean_equals_per_unit_sum(self, optimizer, sample_db, calibrated_units):
        _, prediction = self.predict(
            optimizer, sample_db, calibrated_units,
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        )
        assert prediction.mean == pytest.approx(
            sum(prediction.breakdown.per_unit_mean.values()), rel=1e-9
        )


class TestVariants:
    def all_variants(self, optimizer, sample_db, calibrated_units, sql):
        planned = optimizer.plan_sql(sql)
        predictor = UncertaintyPredictor(calibrated_units)
        prepared = predictor.prepare(planned, sample_db)
        return {
            variant: predictor.predict_prepared(planned, prepared, variant)
            for variant in Variant
        }

    SQL = (
        "SELECT * FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND o_totalprice > 150000"
    )

    def test_variants_share_mean(self, optimizer, sample_db, calibrated_units):
        predictions = self.all_variants(
            optimizer, sample_db, calibrated_units, self.SQL
        )
        means = {p.mean for p in predictions.values()}
        assert max(means) - min(means) < 1e-9 * max(means)

    def test_all_has_largest_variance(self, optimizer, sample_db, calibrated_units):
        predictions = self.all_variants(
            optimizer, sample_db, calibrated_units, self.SQL
        )
        full = predictions[Variant.ALL].distribution.variance
        for variant in (Variant.NO_VAR_C, Variant.NO_VAR_X, Variant.NO_COV):
            assert predictions[variant].distribution.variance <= full + 1e-18

    def test_no_var_c_drops_unit_term(self, optimizer, sample_db, calibrated_units):
        predictions = self.all_variants(
            optimizer, sample_db, calibrated_units, self.SQL
        )
        assert predictions[Variant.NO_VAR_C].breakdown.cost_unit_term == 0.0
        assert predictions[Variant.ALL].breakdown.cost_unit_term > 0.0

    def test_no_var_x_keeps_unit_term(self, optimizer, sample_db, calibrated_units):
        predictions = self.all_variants(
            optimizer, sample_db, calibrated_units, self.SQL
        )
        no_x = predictions[Variant.NO_VAR_X].breakdown
        assert no_x.cost_unit_term > 0.0
        assert no_x.exact_selectivity_term >= 0.0
        assert no_x.bounded_covariance_term == 0.0

    def test_no_cov_drops_bounds(self, optimizer, sample_db, calibrated_units):
        predictions = self.all_variants(
            optimizer, sample_db, calibrated_units, self.SQL
        )
        assert predictions[Variant.NO_COV].breakdown.bounded_covariance_term == 0.0
        assert predictions[Variant.ALL].breakdown.bounded_covariance_term > 0.0


class TestProgress:
    def test_monotone_progress(self):
        indicator = ProgressIndicator(NormalDistribution(10.0, 4.0))
        fractions = [indicator.at(t).fraction for t in (0.0, 2.0, 5.0, 10.0)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_band_contains_point(self):
        indicator = ProgressIndicator(NormalDistribution(10.0, 4.0))
        estimate = indicator.at(4.0)
        assert estimate.fraction_low <= estimate.fraction <= estimate.fraction_high

    def test_remaining_time(self):
        indicator = ProgressIndicator(NormalDistribution(10.0, 1.0))
        estimate = indicator.at(4.0)
        assert estimate.remaining_mean == pytest.approx(6.0)
        assert estimate.remaining_low <= estimate.remaining_mean <= estimate.remaining_high

    def test_wider_prediction_wider_band(self):
        narrow = ProgressIndicator(NormalDistribution(10.0, 0.25)).at(5.0)
        wide = ProgressIndicator(NormalDistribution(10.0, 9.0)).at(5.0)
        narrow_width = narrow.fraction_high - narrow.fraction_low
        wide_width = wide.fraction_high - wide.fraction_low
        assert wide_width > narrow_width

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ProgressIndicator(NormalDistribution(0.0, 1.0))
        indicator = ProgressIndicator(NormalDistribution(5.0, 1.0))
        with pytest.raises(ValueError):
            indicator.at(-1.0)

    def test_describe_readable(self):
        estimate = ProgressIndicator(NormalDistribution(10.0, 4.0)).at(5.0)
        text = estimate.describe()
        assert "done" in text and "left" in text
