"""Tests for the cost-function families, NNLS solver, and grid fitting."""

import numpy as np
import pytest
import scipy.optimize
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costfuncs import C1, C2, C4, C5, C6, CostFunctionFitter, family_for, nnls
from repro.errors import FittingError
from repro.plan import OpKind
from repro.sampling import SelectivityEstimator


class TestFamilies:
    def test_shapes(self):
        assert C1.num_coefficients == 1
        assert C2.num_coefficients == 2
        assert C4.num_coefficients == 3
        assert C6.num_coefficients == 4

    def test_design_rows(self):
        assert C2.design_row({"x": 0.5}).tolist() == [0.5, 1.0]
        assert C4.design_row({"xl": 0.5}).tolist() == [0.25, 0.5, 1.0]
        assert C6.design_row({"xl": 0.5, "xr": 0.2}).tolist() == [0.1, 0.5, 0.2, 1.0]

    def test_evaluate(self):
        coefficients = np.array([2.0, 3.0, 1.0])
        value = C5.evaluate(coefficients, {"xl": 0.5, "xr": 0.1})
        assert value == pytest.approx(2.0 * 0.5 + 3.0 * 0.1 + 1.0)

    def test_family_mapping(self):
        assert family_for(OpKind.SEQ_SCAN, "cs") is C1
        assert family_for(OpKind.INDEX_SCAN, "cr") is C2
        assert family_for(OpKind.SORT, "co") is C4
        assert family_for(OpKind.HASH_JOIN, "ct") is C5
        assert family_for(OpKind.NESTLOOP_JOIN, "no" if False else "co") is C6
        assert family_for(OpKind.SEQ_SCAN, "cr") is None  # seq scans never seek


class TestNnls:
    def test_recovers_nonnegative_solution(self):
        rng = np.random.default_rng(0)
        A = rng.uniform(0, 1, (30, 3))
        true_b = np.array([2.0, 0.5, 1.0])
        y = A @ true_b
        b, residual = nnls(A, y)
        assert b == pytest.approx(true_b, rel=1e-6)
        assert residual < 1e-8

    def test_clamps_negative_components(self):
        # unconstrained solution has a negative coefficient
        A = np.array([[1.0, 1.0], [1.0, 2.0], [1.0, 3.0]])
        y = np.array([3.0, 2.0, 1.0])  # decreasing: slope would be negative
        b, _ = nnls(A, y)
        assert np.all(b >= 0)

    def test_bad_shapes(self):
        with pytest.raises(FittingError):
            nnls(np.ones((3, 2)), np.ones(4))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(4, 20), n=st.integers(1, 4))
    def test_matches_scipy(self, seed, m, n):
        """Property: our Lawson-Hanson agrees with scipy.optimize.nnls."""
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, n))
        y = rng.normal(size=m)
        ours, our_res = nnls(A, y)
        reference, ref_res = scipy.optimize.nnls(A, y)
        assert our_res == pytest.approx(ref_res, abs=1e-6)
        assert ours == pytest.approx(reference, abs=1e-5)


class TestFitting:
    def fit(self, optimizer, sample_db, sql):
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        fitted = CostFunctionFitter(planned, estimate).fit_all()
        return planned, estimate, fitted

    def test_seq_scan_constant(self, tpch_db, optimizer, sample_db):
        planned, _, fitted = self.fit(
            optimizer, sample_db, "SELECT * FROM orders WHERE o_totalprice > 100000"
        )
        scan_functions = fitted[planned.root.op_id].functions
        stats = tpch_db.table_stats("orders")
        # nt must recover exactly |R| (the C1 constant)
        assert scan_functions["ct"].coefficients[0] == pytest.approx(stats.num_rows)
        assert scan_functions["cs"].coefficients[0] == pytest.approx(stats.num_pages)

    def test_index_scan_linear_coefficient(self, tpch_db, optimizer, sample_db):
        planned, estimate, fitted = self.fit(
            optimizer, sample_db,
            "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-03-01'",
        )
        node = planned.root
        assert node.kind is OpKind.INDEX_SCAN
        function = fitted[node.op_id].functions["ci"]
        # ni = fetch_factor * |R| * X: the linear coefficient ~ factor * |R|
        rows = tpch_db.table("lineitem").num_rows
        expected = node.index_fetch_factor * rows
        assert function.coefficients[0] == pytest.approx(expected, rel=0.05)

    def test_hash_join_recovers_engine_coefficients(self, tpch_db, optimizer, sample_db):
        planned, estimate, fitted = self.fit(
            optimizer, sample_db,
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        )
        join = planned.root
        assert join.kind is OpKind.HASH_JOIN
        function = fitted[join.op_id].functions["ct"]
        # nt = Nl + Nr = |Rl| xl + |Rr| xr: coefficients are the table sizes
        sizes = sorted(function.coefficients[:2])
        expected = sorted(
            [tpch_db.table("orders").num_rows, tpch_db.table("lineitem").num_rows]
        )
        assert sizes[0] == pytest.approx(expected[0], rel=0.05)
        assert sizes[1] == pytest.approx(expected[1], rel=0.05)

    def test_all_coefficients_nonnegative(self, optimizer, sample_db):
        planned, _, fitted = self.fit(
            optimizer, sample_db,
            "SELECT COUNT(*) FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
            "AND o_totalprice > 150000",
        )
        for op_functions in fitted.values():
            for function in op_functions.functions.values():
                assert np.all(function.coefficients >= 0)

    def test_evaluate_matches_engine_at_estimate(self, tpch_db, optimizer, sample_db):
        """The fitted polynomial reproduces the engine count at the mean."""
        from repro.optimizer import CostModel

        planned, estimate, fitted = self.fit(
            optimizer, sample_db,
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        )
        join = planned.root
        function = fitted[join.op_id].functions["ct"]
        values = {
            var_id: estimate.per_node[var_id].mean
            for var_id in function.var_bindings.values()
        }
        got = function.evaluate(values)
        model = CostModel(tpch_db)
        n_left = planned.leaf_row_product(join.children[0]) * values[
            function.var_bindings["xl"]
        ]
        n_right = planned.leaf_row_product(join.children[1]) * values[
            function.var_bindings["xr"]
        ]
        truth = model.operator_counts(join, n_left, n_right, 0).as_dict()["ct"]
        assert got == pytest.approx(truth, rel=1e-6)

    def test_monomials_use_variable_ids(self, optimizer, sample_db):
        planned, estimate, fitted = self.fit(
            optimizer, sample_db,
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        )
        function = fitted[planned.root.op_id].functions["ct"]
        var_ids = {
            var_id for _, mono in function.monomials() for var_id in mono
        }
        scan_ids = {node.op_id for node in planned.root.walk() if node.is_scan}
        assert var_ids <= scan_ids

    def test_sort_quadratic_approximates_nlogn(self, tpch_db, optimizer, sample_db):
        planned, estimate, fitted = self.fit(
            optimizer, sample_db,
            "SELECT * FROM orders WHERE o_totalprice > 100000 ORDER BY o_totalprice",
        )
        sort = planned.root
        assert sort.kind is OpKind.SORT
        function = fitted[sort.op_id].functions["co"]
        # The quadratic fit must be a decent approximation of 2 N log2 N at
        # the estimated selectivity.
        var_id = function.var_bindings["xl"]
        x = estimate.per_node[var_id].mean
        n = planned.leaf_row_product(sort.children[0]) * x
        truth = 2.0 * n * np.log2(max(n, 2))
        assert function.evaluate({var_id: x}) == pytest.approx(truth, rel=0.05)
