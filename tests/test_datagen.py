"""Tests for the Zipf sampler and the TPC-H generator."""

import numpy as np
import pytest

from repro.datagen import TpchConfig, ZipfSampler, date_to_days, generate_tpch
from repro.datagen.tpch import ORDERDATE_SPAN_DAYS
from repro.sql.ast import date_literal_days


class TestZipfSampler:
    def test_uniform_when_z_zero(self):
        sampler = ZipfSampler(10, 0.0)
        draws = sampler.sample(20_000, rng=0)
        counts = np.bincount(draws, minlength=11)[1:]
        assert counts.min() > 0.8 * counts.max()

    def test_skew_concentrates_mass(self):
        sampler = ZipfSampler(100, 1.0)
        draws = sampler.sample(20_000, rng=0)
        top = (draws == 1).mean()
        mid = (draws == 50).mean()
        assert top > 10 * max(mid, 1e-6)

    def test_domain_bounds(self):
        draws = ZipfSampler(5, 2.0).sample(1000, rng=1)
        assert draws.min() >= 1 and draws.max() <= 5

    def test_probabilities_sum_to_one(self):
        for z in (0.0, 0.5, 1.0, 2.0):
            probs = ZipfSampler(50, z).probabilities()
            assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_match_empirical(self):
        sampler = ZipfSampler(10, 1.0)
        draws = sampler.sample(100_000, rng=2)
        empirical = np.bincount(draws, minlength=11)[1:] / 100_000
        assert np.allclose(empirical, sampler.probabilities(), atol=0.01)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)


class TestDates:
    def test_epoch(self):
        assert date_to_days(1992, 1, 1) == 0

    def test_leap_year_1992(self):
        assert date_to_days(1992, 3, 1) == 60  # 31 + 29

    def test_consistent_with_sql_literals(self):
        for text in ("1992-01-01", "1994-06-15", "1998-08-02", "1996-02-29"):
            year, month, day = (int(p) for p in text.split("-"))
            assert date_to_days(year, month, day) == date_literal_days(text)

    def test_out_of_domain(self):
        with pytest.raises(ValueError):
            date_to_days(1980, 1, 1)


class TestTpchGenerator:
    def test_row_counts_scale(self, tpch_db):
        assert tpch_db.table("region").num_rows == 5
        assert tpch_db.table("nation").num_rows == 25
        assert tpch_db.table("orders").num_rows == 10 * tpch_db.table("customer").num_rows
        lineitem = tpch_db.table("lineitem").num_rows
        orders = tpch_db.table("orders").num_rows
        assert 1 * orders <= lineitem <= 7 * orders

    def test_foreign_keys_valid(self, tpch_db):
        orders = tpch_db.table("orders")
        customers = tpch_db.table("customer").num_rows
        custkeys = orders.column("o_custkey")
        assert custkeys.min() >= 0 and custkeys.max() < customers

        lineitem = tpch_db.table("lineitem")
        orderkeys = set(orders.column("o_orderkey").tolist())
        assert set(np.unique(lineitem.column("l_orderkey")).tolist()) <= orderkeys

    def test_ship_after_order(self, tpch_db):
        lineitem = tpch_db.table("lineitem")
        orders = tpch_db.table("orders")
        order_dates = dict(
            zip(orders.column("o_orderkey").tolist(), orders.column("o_orderdate").tolist())
        )
        ship = lineitem.column("l_shipdate")[:500]
        keys = lineitem.column("l_orderkey")[:500]
        for key, shipdate in zip(keys.tolist(), ship.tolist()):
            assert shipdate > order_dates[key]

    def test_orderdate_domain(self, tpch_db):
        dates = tpch_db.table("orders").column("o_orderdate")
        assert dates.min() >= 0
        assert dates.max() < ORDERDATE_SPAN_DAYS

    def test_skew_changes_distribution(self, tpch_db, skewed_db):
        uniform_keys = tpch_db.table("lineitem").column("l_partkey")
        skewed_keys = skewed_db.table("lineitem").column("l_partkey")
        # Top part key frequency is much higher under Zipf z=1.
        uniform_top = np.bincount(uniform_keys).max() / len(uniform_keys)
        skewed_top = np.bincount(skewed_keys).max() / len(skewed_keys)
        assert skewed_top > 5 * uniform_top

    def test_default_indexes_exist(self, tpch_db):
        assert tpch_db.has_index("orders", "o_orderkey")
        assert tpch_db.has_index("lineitem", "l_shipdate")
        assert tpch_db.has_index("customer", "c_custkey")

    def test_deterministic_given_seed(self):
        a = generate_tpch(TpchConfig(scale_factor=0.002, seed=9))
        b = generate_tpch(TpchConfig(scale_factor=0.002, seed=9))
        assert np.array_equal(
            a.table("orders").column("o_totalprice"),
            b.table("orders").column("o_totalprice"),
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            TpchConfig(scale_factor=0.0)

    def test_describe_mentions_skew(self):
        assert "zipf" in TpchConfig(scale_factor=0.01, skew_z=1.0).describe()
        assert "uniform" in TpchConfig(scale_factor=0.01).describe()
