"""Documentation hygiene: every public module, class, and function of the
library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{module.__name__}: public items without docstrings: {undocumented}"
    )


def test_public_classes_document_methods():
    """Public methods of the core API classes are documented."""
    from repro.core.predictor import UncertaintyPredictor
    from repro.executor.executor import Executor
    from repro.optimizer.optimizer import Optimizer
    from repro.sampling.estimator import SelectivityEstimator

    for cls in (UncertaintyPredictor, Executor, Optimizer, SelectivityEstimator):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"


def test_every_cli_subcommand_documented():
    """Each subcommand has a parser help line and a command docstring."""
    from repro import cli

    sub_actions = [
        action
        for action in cli.build_parser()._actions
        if hasattr(action, "choices") and isinstance(action.choices, dict)
    ]
    (subparsers,) = sub_actions
    assert set(subparsers.choices) == set(cli._COMMANDS)
    helps = {
        choice.prog.split()[-1]: choice.description
        for choice in subparsers.choices.values()
    }
    for name, handler in cli._COMMANDS.items():
        assert inspect.getdoc(handler), f"repro {name} handler lacks a docstring"
        assert name in helps


def test_api_and_replay_surfaces_fully_documented():
    """Every public symbol and method of repro.api / repro.replay."""
    import repro.api
    import repro.replay

    for module in (repro.api, repro.replay):
        for name in module.__all__:
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            assert inspect.getdoc(obj), f"{module.__name__}.{name} lacks a docstring"
            if inspect.isclass(obj):
                for method_name, member in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    defined_here = getattr(member, "__module__", "").startswith(
                        "repro"
                    )
                    if method_name.startswith("_") or not defined_here:
                        continue
                    assert inspect.getdoc(member), (
                        f"{module.__name__}.{name}.{method_name} lacks a docstring"
                    )
