"""Exception hierarchy and engine edge cases."""

import numpy as np
import pytest

import repro.errors as errors
from repro.executor import Executor
from repro.optimizer import Optimizer
from repro.plan import (
    MaterializeNode,
    MergeJoinNode,
    SeqScanNode,
    SortNode,
    assign_op_ids,
)
from repro.sampling import SelectivityEstimator
from repro.storage import Column, ColumnType, Database, Schema, Table


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_sql_errors_nested(self):
        assert issubclass(errors.SqlLexError, errors.SqlError)
        assert issubclass(errors.SqlParseError, errors.SqlError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.OptimizerError("boom")


def _two_table_db():
    schema = Schema([Column("k", ColumnType.INT), Column("v", ColumnType.FLOAT)])
    db = Database("edge")
    db.add_table(
        Table(
            "ta",
            schema,
            {
                "k": np.array([1, 2, 3, 4], dtype=np.int64),
                "v": np.array([1.0, 2.0, 3.0, 4.0]),
            },
        )
    )
    db.add_table(
        Table(
            "tb",
            schema,
            {
                "k": np.array([2, 3, 5], dtype=np.int64),
                "v": np.array([20.0, 30.0, 50.0]),
            },
        )
    )
    return db


class TestEngineEdgeCases:
    def test_merge_join_node_executes(self):
        db = _two_table_db()
        left = SeqScanNode(table="ta", alias="ta")
        right = SeqScanNode(table="tb", alias="tb")
        join = MergeJoinNode(keys=[("ta.k", "tb.k")], children=[left, right])
        root = assign_op_ids(join)
        planned = Optimizer(db).plan_sql("SELECT * FROM ta")  # borrow metadata
        planned.root = root
        planned.est_cards = {n.op_id: 1.0 for n in root.walk()}
        planned.alias_tables = {"ta": "ta", "tb": "tb"}
        planned.alias_rows = {"ta": 4, "tb": 3}
        planned.bound.select_star = True
        result = Executor(db).execute(planned)
        assert result.num_rows == 2  # keys 2 and 3 match

    def test_materialize_and_sort_passthrough(self):
        db = _two_table_db()
        scan = SeqScanNode(table="ta", alias="ta")
        materialize = MaterializeNode(children=[scan])
        sort = SortNode(keys=[("ta.v", True)], children=[materialize])
        root = assign_op_ids(sort)
        planned = Optimizer(db).plan_sql("SELECT * FROM ta")
        planned.root = root
        planned.est_cards = {n.op_id: 4.0 for n in root.walk()}
        planned.bound.select_star = True
        result = Executor(db).execute(planned)
        assert result.num_rows == 4
        values = result.output.columns["ta.v"]
        assert values.tolist() == sorted(values.tolist(), reverse=True)

    def test_empty_scan_propagates(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql(
            "SELECT * FROM ta, tb WHERE ta.k = tb.k AND ta.v > 100"
        )
        result = Executor(db).execute(planned)
        assert result.num_rows == 0

    def test_aggregate_over_empty_input(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql(
            "SELECT COUNT(*), SUM(ta.v) AS s FROM ta WHERE ta.v > 100"
        )
        result = Executor(db).execute(planned)
        assert result.num_rows == 1
        assert result.output.columns["count_0"][0] == 0

    def test_group_by_over_empty_input(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql(
            "SELECT k, COUNT(*) FROM ta WHERE v > 100 GROUP BY k"
        )
        result = Executor(db).execute(planned)
        assert result.num_rows == 0

    def test_limit_beyond_rows(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql("SELECT * FROM ta LIMIT 99")
        assert Executor(db).execute(planned).num_rows == 4

    def test_cross_filter_execution(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql(
            "SELECT * FROM ta, tb WHERE ta.v < tb.v"
        )
        result = Executor(db).execute(planned)
        expected = sum(
            1
            for a in [1.0, 2.0, 3.0, 4.0]
            for b in [20.0, 30.0, 50.0]
            if a < b
        )
        assert result.num_rows == expected

    def test_estimator_on_cross_filter_plan(self, tpch_db, sample_db):
        planned = Optimizer(tpch_db).plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_orderdate < l_commitdate"
        )
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        root = estimate.resolve(planned.root.op_id)
        assert 0.0 <= root.mean <= 1.0
        assert root.variance >= 0

    def test_in_predicate_multiple_hits(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql("SELECT * FROM ta WHERE k IN (1, 3, 9)")
        assert Executor(db).execute(planned).num_rows == 2

    def test_ne_predicate(self):
        db = _two_table_db()
        planned = Optimizer(db).plan_sql("SELECT * FROM ta WHERE k <> 2")
        assert Executor(db).execute(planned).num_rows == 3
