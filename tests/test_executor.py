"""Tests for the execution kernels and the plan executor.

Correctness is checked against brute-force reference computations,
including a hypothesis-driven comparison on random mini-tables.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.executor import (
    Executor,
    cross_join_pairs,
    equijoin_pairs,
    grouped_aggregate,
    sort_order,
)
from repro.optimizer import Optimizer
from repro.storage import Column, ColumnType, Database, Schema, Table
from repro.util import group_ids


class TestKernels:
    def test_equijoin_multi_key(self):
        left = [np.array([1, 1, 2]), np.array([10, 20, 10])]
        right = [np.array([1, 2]), np.array([20, 10])]
        li, ri = equijoin_pairs(left, right)
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(1, 0), (2, 1)}

    def test_equijoin_arity_mismatch(self):
        with pytest.raises(ExecutionError):
            equijoin_pairs([np.array([1])], [np.array([1]), np.array([2])])

    def test_cross_join(self):
        li, ri = cross_join_pairs(2, 3)
        assert len(li) == 6
        assert set(zip(li.tolist(), ri.tolist())) == {
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        }

    def test_cross_join_limit(self):
        with pytest.raises(ExecutionError):
            cross_join_pairs(100_000, 10_000)

    def test_sort_order_asc_desc(self):
        a = np.array([3, 1, 2])
        b = np.array([9, 9, 1])
        order = sort_order([b, a], [False, True])
        assert a[order].tolist() == [2, 3, 1]

    def test_sort_strings_descending(self):
        values = np.array(["b", "c", "a"], dtype="U4")
        order = sort_order([values], [True])
        assert values[order].tolist() == ["c", "b", "a"]

    def test_grouped_sum(self):
        ids = np.array([0, 1, 0, 1])
        out = grouped_aggregate(ids, 2, "SUM", np.array([1.0, 2.0, 3.0, 4.0]))
        assert out.tolist() == [4.0, 6.0]

    def test_grouped_count_star(self):
        ids = np.array([0, 0, 1])
        assert grouped_aggregate(ids, 2, "COUNT", None).tolist() == [2.0, 1.0]

    def test_grouped_avg(self):
        ids = np.array([0, 0, 1])
        out = grouped_aggregate(ids, 2, "AVG", np.array([1.0, 3.0, 10.0]))
        assert out.tolist() == [2.0, 10.0]

    def test_grouped_min_max(self):
        ids = np.array([0, 1, 0, 1])
        values = np.array([5.0, 7.0, 3.0, 9.0])
        assert grouped_aggregate(ids, 2, "MIN", values).tolist() == [3.0, 7.0]
        assert grouped_aggregate(ids, 2, "MAX", values).tolist() == [5.0, 9.0]

    def test_count_distinct(self):
        ids = np.array([0, 0, 0, 1])
        values = np.array([1, 1, 2, 5])
        out = grouped_aggregate(ids, 2, "COUNT", values, distinct=True)
        assert out.tolist() == [2.0, 1.0]

    def test_distinct_non_count_rejected(self):
        with pytest.raises(ExecutionError):
            grouped_aggregate(np.array([0]), 1, "SUM", np.array([1.0]), distinct=True)

    @settings(max_examples=40, deadline=None)
    @given(
        groups=st.lists(st.integers(0, 4), min_size=1, max_size=50),
        seed=st.integers(0, 1000),
    )
    def test_grouped_aggregates_match_reference(self, groups, seed):
        """Property: all aggregate kernels agree with plain Python."""
        rng = np.random.default_rng(seed)
        raw = np.array(groups)
        ids, reps = group_ids(raw)
        values = rng.uniform(-10, 10, len(groups))
        k = len(reps)
        by_group = {}
        for gid, value in zip(ids.tolist(), values.tolist()):
            by_group.setdefault(gid, []).append(value)
        assert grouped_aggregate(ids, k, "SUM", values).tolist() == pytest.approx(
            [sum(by_group[g]) for g in range(k)]
        )
        assert grouped_aggregate(ids, k, "MIN", values).tolist() == pytest.approx(
            [min(by_group[g]) for g in range(k)]
        )
        assert grouped_aggregate(ids, k, "MAX", values).tolist() == pytest.approx(
            [max(by_group[g]) for g in range(k)]
        )
        assert grouped_aggregate(ids, k, "COUNT", None).tolist() == pytest.approx(
            [len(by_group[g]) for g in range(k)]
        )


def _mini_db(left_keys, left_vals, right_keys):
    schema_a = Schema([Column("k", ColumnType.INT), Column("v", ColumnType.FLOAT)])
    schema_b = Schema([Column("k", ColumnType.INT), Column("w", ColumnType.INT)])
    db = Database("mini")
    db.add_table(
        Table(
            "ta",
            schema_a,
            {
                "k": np.array(left_keys, dtype=np.int64),
                "v": np.array(left_vals, dtype=np.float64),
            },
        ),
        indexed_columns=("k",),
    )
    db.add_table(
        Table(
            "tb",
            schema_b,
            {
                "k": np.array(right_keys, dtype=np.int64),
                "w": np.arange(len(right_keys), dtype=np.int64),
            },
        ),
    )
    return db


class TestExecutorAgainstReference:
    @settings(max_examples=30, deadline=None)
    @given(
        left_keys=st.lists(st.integers(0, 5), min_size=1, max_size=25),
        right_keys=st.lists(st.integers(0, 5), min_size=1, max_size=25),
        threshold=st.floats(-1, 1),
        seed=st.integers(0, 99),
    )
    def test_filtered_join_count(self, left_keys, right_keys, threshold, seed):
        """Property: join + filter matches the nested-loop reference."""
        rng = np.random.default_rng(seed)
        left_vals = rng.uniform(-1, 1, len(left_keys))
        db = _mini_db(left_keys, left_vals, right_keys)
        planned = Optimizer(db).plan_sql(
            f"SELECT COUNT(*) FROM ta, tb WHERE ta.k = tb.k AND v <= {threshold}"
        )
        result = Executor(db).execute(planned)
        expected = sum(
            1
            for lk, lv in zip(left_keys, left_vals)
            if lv <= threshold
            for rk in right_keys
            if lk == rk
        )
        assert result.output.columns["count_0"][0] == expected

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 3), min_size=1, max_size=30),
        seed=st.integers(0, 99),
    )
    def test_group_by_sums(self, keys, seed):
        rng = np.random.default_rng(seed)
        vals = rng.uniform(0, 10, len(keys))
        db = _mini_db(keys, vals, [0])
        planned = Optimizer(db).plan_sql(
            "SELECT k, SUM(v) AS total FROM ta GROUP BY k"
        )
        result = Executor(db).execute(planned)
        got = dict(
            zip(
                result.output.columns["ta.k"].tolist(),
                result.output.columns["total"].tolist(),
            )
        )
        expected = {}
        for key, value in zip(keys, vals):
            expected[key] = expected.get(key, 0.0) + value
        assert set(got) == set(expected)
        for key in expected:
            assert got[key] == pytest.approx(expected[key])


class TestExecutorOnTpch:
    def test_seq_scan_predicate(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders WHERE o_totalprice <= 100000"
        )
        result = executor.execute(planned)
        truth = (tpch_db.table("orders").column("o_totalprice") <= 100000).sum()
        assert result.num_rows == truth

    def test_index_scan_equals_seq_scan(self, tpch_db):
        from repro.optimizer import OptimizerConfig

        sql = "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-03-01'"
        with_index = Optimizer(tpch_db).plan_sql(sql)
        without = Optimizer(
            tpch_db, OptimizerConfig(enable_index_scans=False)
        ).plan_sql(sql)
        executor = Executor(tpch_db)
        assert (
            executor.execute(with_index).num_rows
            == executor.execute(without).num_rows
        )

    def test_fk_join_cardinality(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        result = executor.execute(planned)
        # every lineitem matches exactly one order
        assert result.num_rows == tpch_db.table("lineitem").num_rows

    def test_three_way_join_with_filters(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT * FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
            "AND c_mktsegment = 'BUILDING'"
        )
        result = executor.execute(planned)
        # reference: filter customers, then count their lineitems
        customers = tpch_db.table("customer")
        building = set(
            customers.column("c_custkey")[
                customers.column("c_mktsegment") == "BUILDING"
            ].tolist()
        )
        orders = tpch_db.table("orders")
        keep_orders = set(
            orders.column("o_orderkey")[
                np.isin(orders.column("o_custkey"), list(building))
            ].tolist()
        )
        lineitem = tpch_db.table("lineitem")
        expected = int(np.isin(lineitem.column("l_orderkey"), list(keep_orders)).sum())
        assert result.num_rows == expected

    def test_cardinalities_recorded_per_node(self, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        result = executor.execute(planned)
        node_ids = {node.op_id for node in planned.root.walk()}
        assert set(result.cardinalities) == node_ids
        assert all(v >= 0 for v in result.cardinalities.values())

    def test_counts_nonnegative(self, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        result = executor.execute(planned)
        for counts in result.counts.values():
            for value in counts.as_dict().values():
                assert value >= 0

    def test_order_by_descending(self, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders WHERE o_totalprice > 400000 "
            "ORDER BY o_totalprice DESC"
        )
        result = executor.execute(planned)
        prices = result.output.columns["orders.o_totalprice"]
        assert np.all(np.diff(prices) <= 0)

    def test_limit(self, optimizer, executor):
        planned = optimizer.plan_sql("SELECT * FROM orders LIMIT 7")
        assert executor.execute(planned).num_rows == 7

    def test_avg_aggregate(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql("SELECT AVG(o_totalprice) AS a FROM orders")
        result = executor.execute(planned)
        truth = float(tpch_db.table("orders").column("o_totalprice").mean())
        assert result.output.columns["a"][0] == pytest.approx(truth)

    def test_sum_arith_expression(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT SUM(l_extendedprice * (1 - l_discount)) AS rev FROM lineitem"
        )
        result = executor.execute(planned)
        lineitem = tpch_db.table("lineitem")
        truth = float(
            (
                lineitem.column("l_extendedprice")
                * (1 - lineitem.column("l_discount"))
            ).sum()
        )
        assert result.output.columns["rev"][0] == pytest.approx(truth, rel=1e-9)

    def test_column_pair_predicate(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) FROM lineitem WHERE l_commitdate < l_receiptdate"
        )
        result = executor.execute(planned)
        lineitem = tpch_db.table("lineitem")
        truth = int(
            (lineitem.column("l_commitdate") < lineitem.column("l_receiptdate")).sum()
        )
        assert result.output.columns["count_0"][0] == truth

    def test_group_by_two_keys(self, tpch_db, optimizer, executor):
        planned = optimizer.plan_sql(
            "SELECT l_returnflag, l_linestatus, COUNT(*) FROM lineitem "
            "GROUP BY l_returnflag, l_linestatus"
        )
        result = executor.execute(planned)
        lineitem = tpch_db.table("lineitem")
        flags = lineitem.column("l_returnflag")
        statuses = lineitem.column("l_linestatus")
        expected = len({(f, s) for f, s in zip(flags.tolist(), statuses.tolist())})
        assert result.num_rows == expected
