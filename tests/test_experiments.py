"""Tests for the evaluation metrics and the experiment lab."""

import math

import numpy as np
import pytest

from repro.core import Variant
from repro.experiments import (
    ExperimentLab,
    correlation_metrics,
    distribution_distance,
    empirical_probability,
    pr_curves,
    predicted_probability,
)
from repro.experiments.reporting import format_cell_value, render_table


@pytest.fixture(scope="module")
def lab(tpch_db):
    return ExperimentLab(
        databases={"uniform-small": tpch_db},
        seed=0,
        query_counts={"MICRO": 10, "SELJOIN": 7, "TPCH": 7},
        calibration_repetitions=4,
    )


class TestMetrics:
    def test_predicted_probability_is_two_phi_minus_one(self):
        assert predicted_probability(0.0) == pytest.approx(0.0)
        assert predicted_probability(1.96) == pytest.approx(0.95, abs=0.01)
        assert predicted_probability(6.0) == pytest.approx(1.0, abs=1e-6)

    def test_empirical_probability(self):
        normalized = np.array([0.5, 1.5, 2.5, 3.5])
        assert empirical_probability(normalized, 2.0) == 0.5
        assert empirical_probability(normalized, 10.0) == 1.0

    def test_dn_zero_when_perfectly_calibrated(self):
        """Errors drawn from the claimed normal give small Dn."""
        rng = np.random.default_rng(0)
        n = 4000
        mus = np.zeros(n)
        sigmas = np.ones(n)
        actuals = rng.normal(0.0, 1.0, n)
        assert distribution_distance(mus, sigmas, actuals) < 0.03

    def test_dn_large_when_overconfident(self):
        rng = np.random.default_rng(0)
        n = 2000
        mus = np.zeros(n)
        sigmas = np.full(n, 0.1)  # claims 10x more confidence than reality
        actuals = rng.normal(0.0, 1.0, n)
        assert distribution_distance(mus, sigmas, actuals) > 0.3

    def test_correlation_metrics_strong_signal(self):
        rng = np.random.default_rng(1)
        sigmas = rng.uniform(0.1, 2.0, 100)
        errors = sigmas * rng.uniform(0.8, 1.2, 100)
        rs, rp = correlation_metrics(sigmas, errors)
        assert rs > 0.9 and rp > 0.9

    def test_pr_curves_shapes(self):
        alphas, empirical, predicted = pr_curves(
            np.zeros(10), np.ones(10), np.linspace(-2, 2, 10)
        )
        assert len(alphas) == len(empirical) == len(predicted)
        assert all(0 <= p <= 1 for p in predicted)

    def test_dn_nan_for_empty(self):
        assert math.isnan(distribution_distance([], [], []))


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 0.5], ["x", float("nan")]])
        assert "| a" in text and "nan" in text
        assert text.count("\n") == 3

    def test_format_values(self):
        assert format_cell_value(None) == "-"
        assert format_cell_value(0.123456) == "0.1235"
        assert format_cell_value("text") == "text"


class TestLab:
    def test_executed_queries_cached(self, lab):
        first = lab.executed_queries("uniform-small", "SELJOIN")
        second = lab.executed_queries("uniform-small", "SELJOIN")
        assert first is second
        assert len(first) == 7

    def test_run_cell_shapes(self, lab):
        cell = lab.run_cell("uniform-small", "SELJOIN", "PC2", 0.05)
        assert len(cell.mus) == len(cell.sigmas) == len(cell.actuals) == 7
        assert np.all(cell.actuals > 0)
        assert np.all(cell.sigmas >= 0)

    def test_correlation_positive(self, lab):
        cell = lab.run_cell("uniform-small", "MICRO", "PC2", 0.05)
        assert cell.rs > 0.3  # small cell; the full run gives > 0.7

    def test_variant_changes_sigmas_not_mus(self, lab):
        full = lab.run_cell("uniform-small", "SELJOIN", "PC2", 0.05)
        ablated = lab.run_cell(
            "uniform-small", "SELJOIN", "PC2", 0.05, variant=Variant.NO_VAR_C
        )
        assert np.allclose(full.mus, ablated.mus)
        assert np.all(ablated.sigmas <= full.sigmas + 1e-15)

    def test_actual_times_deterministic_per_key(self, lab):
        a = lab.actual_time("uniform-small", "SELJOIN", 0, "PC1")
        b = lab.actual_time("uniform-small", "SELJOIN", 0, "PC1")
        assert a == b

    def test_machines_differ(self, lab):
        pc1 = lab.actual_time("uniform-small", "SELJOIN", 0, "PC1")
        pc2 = lab.actual_time("uniform-small", "SELJOIN", 0, "PC2")
        assert pc1 > pc2  # PC1 is the slower machine

    def test_relative_overhead_small(self, lab):
        overhead = lab.relative_overhead("uniform-small", "SELJOIN", "PC1", 0.05)
        assert 0.0 < overhead < 0.6

    def test_overhead_grows_with_ratio(self, lab):
        low = lab.relative_overhead("uniform-small", "SELJOIN", "PC1", 0.01)
        high = lab.relative_overhead("uniform-small", "SELJOIN", "PC1", 0.1)
        assert high > low

    def test_selectivity_records(self, lab):
        records = lab.selectivity_records("uniform-small", "SELJOIN", 0.05)
        assert records
        for record in records:
            assert 0.0 <= record.estimated <= 1.0
            assert 0.0 <= record.actual <= 1.0
            assert record.estimated_std >= 0.0

    def test_selectivity_estimates_track_truth(self, lab):
        from repro.mathstats import pearson

        records = lab.selectivity_records("uniform-small", "MICRO", 0.1)
        est = [r.estimated for r in records]
        act = [r.actual for r in records]
        assert pearson(est, act) > 0.95  # Table 7's headline result

    def test_without_largest_sigma(self, lab):
        cell = lab.run_cell("uniform-small", "MICRO", "PC2", 0.05)
        trimmed = cell.without_largest_sigma()
        assert len(trimmed.sigmas) == len(cell.sigmas) - 1
        assert trimmed.sigmas.max() <= cell.sigmas.max()
