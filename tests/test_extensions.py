"""Tests for the extensions: CLI, concurrency, histogram estimator,
LEC chooser, ASCII plots."""

import io

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import LeastExpectedCostChooser, UncertaintyPredictor
from repro.core.concurrency import ConcurrentPredictor, InterferenceModel
from repro.errors import PredictionError
from repro.experiments.plots import ascii_lines, ascii_scatter
from repro.optimizer.cost_model import COST_UNIT_NAMES
from repro.sampling.histogram_estimator import HistogramSelectivityEstimator


class TestCli:
    def run(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_generate(self):
        code, text = self.run("generate", "--scale", "0.002")
        assert code == 0
        assert "lineitem" in text and "rows" in text

    def test_explain(self):
        code, text = self.run(
            "explain", "--scale", "0.002",
            "--sql", "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        )
        assert code == 0
        assert "Join" in text and "SeqScan" in text

    def test_predict(self):
        code, text = self.run(
            "predict", "--scale", "0.002", "--sr", "0.2",
            "--sql", "SELECT * FROM orders WHERE o_totalprice > 100000",
        )
        assert code == 0
        assert "predicted mean" in text and "90% interval" in text

    def test_predict_with_execute(self):
        code, text = self.run(
            "predict", "--scale", "0.002", "--sr", "0.2", "--execute",
            "--sql", "SELECT * FROM orders WHERE o_totalprice > 100000",
        )
        assert code == 0
        assert "actual (sim)" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            self.run("nope")

    def test_predict_batch_reports_cache_layers(self):
        code, text = self.run(
            "predict-batch", "--scale", "0.002", "--sr", "0.2",
            "--sql", "SELECT * FROM orders WHERE o_totalprice > 100000",
            "--sql", "SELECT * FROM orders WHERE o_totalprice > 100000",
        )
        assert code == 0
        assert "served 2 of 2 queries" in text
        assert "prepared cache" in text
        assert "sampling engine" in text

    def test_predict_batch_survives_malformed_statement(self):
        # One bad statement becomes a per-query error row; the rest of
        # the batch is still served, and the exit code reports the
        # partial failure.
        code, text = self.run(
            "predict-batch", "--scale", "0.002", "--sr", "0.2",
            "--sql", "SELECT * FROM orders WHERE o_totalprice > 100000",
            "--sql", "SELEC nope FRM",
            "--sql", "SELECT * FROM lineitem WHERE l_quantity > 30",
        )
        assert code == 1
        assert "ERROR" in text
        assert "1 queries failed" in text
        assert "served 2 of 3 queries" in text
        # The good queries still produced prediction rows.
        assert text.count("miss") >= 1

    def test_predict_batch_all_failures(self):
        code, text = self.run(
            "predict-batch", "--scale", "0.002",
            "--sql", "utter nonsense",
        )
        assert code == 1
        assert "served 0 of 1 queries" in text


class TestInterferenceModel:
    def test_mpl_one_is_identity(self, calibrated_units):
        loaded = InterferenceModel.default().loaded_units(calibrated_units, 1)
        for unit in COST_UNIT_NAMES:
            assert loaded.mean(unit) == calibrated_units.mean(unit)
            assert loaded.variance(unit) == calibrated_units.variance(unit)

    def test_means_grow_with_mpl(self, calibrated_units):
        model = InterferenceModel.default()
        two = model.loaded_units(calibrated_units, 2)
        four = model.loaded_units(calibrated_units, 4)
        for unit in COST_UNIT_NAMES:
            assert calibrated_units.mean(unit) < two.mean(unit) < four.mean(unit)

    def test_variance_grows_with_mpl(self, calibrated_units):
        model = InterferenceModel.default()
        two = model.loaded_units(calibrated_units, 2)
        four = model.loaded_units(calibrated_units, 4)
        for unit in COST_UNIT_NAMES:
            assert two.variance(unit) < four.variance(unit)

    def test_io_degrades_faster_than_cpu(self, calibrated_units):
        loaded = InterferenceModel.default().loaded_units(calibrated_units, 4)
        io_ratio = loaded.mean("cr") / calibrated_units.mean("cr")
        cpu_ratio = loaded.mean("co") / calibrated_units.mean("co")
        assert io_ratio > cpu_ratio

    def test_invalid_mpl(self, calibrated_units):
        with pytest.raises(ValueError):
            InterferenceModel.default().loaded_units(calibrated_units, 0)

    def test_samples_propagate_scaled(self, calibrated_units):
        # Regression: loaded_units used to return samples={}, silently
        # dropping the calibration observations.
        model = InterferenceModel.default()
        loaded = model.loaded_units(calibrated_units, 3)
        for unit in COST_UNIT_NAMES:
            original = calibrated_units.samples[unit]
            scaled = loaded.samples[unit]
            assert len(scaled) == len(original)
            scale = 1.0 + model.slopes[unit] * 2
            assert scaled[0] == pytest.approx(original[0] * scale)

    def test_samples_identity_at_mpl_one(self, calibrated_units):
        loaded = InterferenceModel.default().loaded_units(calibrated_units, 1)
        for unit in COST_UNIT_NAMES:
            assert loaded.samples[unit] == pytest.approx(
                calibrated_units.samples[unit]
            )


class TestConcurrentPredictor:
    SQL = "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"

    def test_sweep_monotone_means(self, optimizer, sample_db, calibrated_units):
        planned = optimizer.plan_sql(self.SQL)
        predictor = ConcurrentPredictor(calibrated_units)
        sweep = predictor.sweep(planned, sample_db, levels=(1, 2, 4))
        means = [sweep[mpl].mean for mpl in (1, 2, 4)]
        assert means == sorted(means)
        assert means[2] > 1.5 * means[0]

    def test_mpl_one_matches_base_predictor(
        self, optimizer, sample_db, calibrated_units
    ):
        planned = optimizer.plan_sql(self.SQL)
        base = UncertaintyPredictor(calibrated_units)
        concurrent = ConcurrentPredictor(calibrated_units)
        prepared = base.prepare(planned, sample_db)
        a = base.predict_prepared(planned, prepared)
        b = concurrent.predict_prepared(planned, prepared, mpl=1)
        assert a.mean == pytest.approx(b.mean)
        assert a.std == pytest.approx(b.std)

    def test_uncertainty_grows_under_load(self, optimizer, sample_db, calibrated_units):
        planned = optimizer.plan_sql(self.SQL)
        predictor = ConcurrentPredictor(calibrated_units)
        sweep = predictor.sweep(planned, sample_db, levels=(1, 6))
        assert sweep[6].std > sweep[1].std


class TestHistogramEstimator:
    def test_scan_mean_close_to_truth(self, tpch_db, optimizer):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders WHERE o_totalprice <= 225000"
        )
        estimate = HistogramSelectivityEstimator(planned).estimate()
        node = estimate.per_node[planned.root.op_id]
        truth = float(
            (tpch_db.table("orders").column("o_totalprice") <= 225000).mean()
        )
        assert node.mean == pytest.approx(truth, abs=0.05)
        assert node.source == "histogram"
        assert node.variance > 0

    def test_join_estimate_has_uncertainty(self, optimizer):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        estimate = HistogramSelectivityEstimator(planned).estimate()
        node = estimate.resolve(planned.root.op_id)
        assert node.mean > 0
        assert node.variance > 0

    def test_aggregate_falls_back(self, optimizer):
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        estimate = HistogramSelectivityEstimator(planned).estimate()
        assert estimate.per_node[planned.root.op_id].source == "optimizer"

    def test_predictor_integration(self, optimizer, calibrated_units):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice > 200000"
        )
        predictor = UncertaintyPredictor(calibrated_units)
        prediction = predictor.predict(planned, None, method="histogram")
        assert prediction.mean > 0
        assert prediction.std > 0

    def test_sampling_requires_sample_db(self, optimizer, calibrated_units):
        planned = optimizer.plan_sql("SELECT * FROM orders")
        predictor = UncertaintyPredictor(calibrated_units)
        with pytest.raises(PredictionError):
            predictor.predict(planned, None, method="sampling")

    def test_unknown_method_rejected(self, optimizer, sample_db, calibrated_units):
        planned = optimizer.plan_sql("SELECT * FROM orders")
        predictor = UncertaintyPredictor(calibrated_units)
        with pytest.raises(PredictionError):
            predictor.predict(planned, sample_db, method="tarot")


class TestLecChooser:
    def test_choose_minimizes_expected_cost(self, tpch_db, sample_db, calibrated_units):
        chooser = LeastExpectedCostChooser(tpch_db, calibrated_units)
        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_orderdate <= DATE '1992-03-01'"
        )
        candidates = chooser.candidates(sql, sample_db)
        assert len(candidates) >= 2
        best = chooser.choose(sql, sample_db)
        assert best.expected_cost == min(c.expected_cost for c in candidates)

    def test_risk_averse_weighs_std(self, tpch_db, sample_db, calibrated_units):
        chooser = LeastExpectedCostChooser(tpch_db, calibrated_units)
        sql = "SELECT * FROM orders WHERE o_totalprice > 300000"
        candidate = chooser.choose_risk_averse(sql, sample_db, risk_aversion=2.0)
        assert candidate.risk_adjusted_cost(2.0) == pytest.approx(
            candidate.expected_cost + 2.0 * candidate.cost_std
        )

    def test_candidates_deduplicated(self, tpch_db, sample_db, calibrated_units):
        chooser = LeastExpectedCostChooser(tpch_db, calibrated_units)
        candidates = chooser.candidates("SELECT * FROM region", sample_db)
        shapes = [c.planned.root.pretty() for c in candidates]
        assert len(shapes) == len(set(shapes))

    def test_choosers_share_one_candidate_evaluation(
        self, tpch_db, sample_db, calibrated_units, monkeypatch
    ):
        # Regression: choose / choose_by_point / choose_risk_averse used to
        # re-plan and re-predict every candidate from scratch, doubling (or
        # tripling) all sampling work when comparing rankings on one query.
        import repro.core.lec as lec_module

        prepare_calls = 0
        original_prepare = UncertaintyPredictor.prepare

        def counting_prepare(self, *args, **kwargs):
            nonlocal prepare_calls
            prepare_calls += 1
            return original_prepare(self, *args, **kwargs)

        monkeypatch.setattr(UncertaintyPredictor, "prepare", counting_prepare)
        chooser = lec_module.LeastExpectedCostChooser(tpch_db, calibrated_units)
        sql = "SELECT * FROM orders WHERE o_totalprice > 300000"
        chooser.choose(sql, sample_db)
        after_first = prepare_calls
        assert after_first >= 1
        lec = chooser.choose(sql, sample_db)
        point = chooser.choose_by_point(sql, sample_db)
        risk = chooser.choose_risk_averse(sql, sample_db)
        assert prepare_calls == after_first
        assert {lec.label, point.label, risk.label} <= {
            c.label for c in chooser.candidates(sql, sample_db)
        }

    def test_candidate_cache_is_isolated_per_query(
        self, tpch_db, sample_db, calibrated_units
    ):
        chooser = LeastExpectedCostChooser(tpch_db, calibrated_units)
        first = chooser.candidates("SELECT * FROM region", sample_db)
        second = chooser.candidates(
            "SELECT * FROM orders WHERE o_totalprice > 300000", sample_db
        )
        assert first and second
        # Returned lists are copies: callers may sort/mutate freely.
        cached = chooser.candidates("SELECT * FROM region", sample_db)
        cached.clear()
        assert chooser.candidates("SELECT * FROM region", sample_db)


class TestAsciiPlots:
    def test_scatter_renders_all_points(self):
        text = ascii_scatter([0, 1, 2], [0, 1, 4], width=20, height=10)
        assert text.count("*") == 3
        assert "[0 .. 2]" in text

    def test_scatter_constant_values(self):
        text = ascii_scatter([1, 1, 1], [2, 2, 2])
        assert "*" in text

    def test_scatter_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_scatter([1, 2], [1])

    def test_scatter_empty(self):
        assert ascii_scatter([], []) == "(no data)"

    def test_lines_multiple_series(self):
        x = np.linspace(0, 1, 10)
        text = ascii_lines(
            x, {"pred": x.tolist(), "obs": (x**2).tolist()}, width=30, height=8
        )
        assert "p = pred" in text and "o = obs" in text
        assert "p" in text and "o" in text

    def test_lines_empty_series(self):
        assert ascii_lines([1, 2], {}) == "(no data)"
