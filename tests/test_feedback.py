"""Unit tests for the online feedback loop (repro.feedback).

Covers the pieces in isolation: the conformal window against a
brute-force sorted-quantile reference (property-style over random
streams), the Page–Hinkley detector on synthetic stationary and shifted
streams, config validation, and the per-tenant recalibrator — isolation
between tenants, the activation threshold that preserves observe-free
bitwise identity, and the drift → truncate → fast re-formation path.
The end-to-end loop (replay + wire) lives in ``test_replay.py`` and
``test_api_http.py``.
"""

import math
import random

import pytest

from repro.errors import FeedbackError
from repro.feedback import (
    DEFAULT_TENANT,
    REFERENCE_CONFIDENCE,
    ConformalWindow,
    DriftDetector,
    FeedbackConfig,
    FeedbackRecalibrator,
    FeedbackStats,
)
from repro.feedback.recalibrator import SCORE_CLIP


def brute_force_scale(scores, confidence):
    """The split-conformal quantile, computed the obvious way."""
    n = len(scores)
    rank = math.ceil((n + 1) * confidence)
    if rank > n:
        return None
    return sorted(scores)[rank - 1]


# ---------------------------------------------------------------------------
# conformal window


class TestConformalWindow:
    def test_matches_brute_force_reference(self):
        rng = random.Random(7)
        for trial in range(25):
            maxlen = rng.randint(2, 60)
            min_obs = rng.randint(1, maxlen)
            window = ConformalWindow(maxlen, min_obs)
            scores = [rng.expovariate(1.0) for _ in range(rng.randint(0, 120))]
            for score in scores:
                window.add(score)
            held = scores[-maxlen:]
            for confidence in (0.5, 0.8, 0.9, 0.95, 0.99):
                expected = (
                    brute_force_scale(held, confidence)
                    if len(held) >= min_obs
                    else None
                )
                assert window.scale(confidence) == expected, (
                    trial,
                    confidence,
                    held,
                )

    def test_inactive_below_min_observations(self):
        window = ConformalWindow(maxlen=32, min_observations=5)
        for _ in range(4):
            window.add(1.0)
        assert window.scale(0.9) is None
        window.add(1.0)
        assert window.scale(0.5) == 1.0

    def test_unresolvable_confidence_is_none(self):
        # 0.99 needs ceil((n+1) * 0.99) <= n, i.e. n >= 99.
        window = ConformalWindow(maxlen=200, min_observations=1)
        for _ in range(50):
            window.add(1.0)
        assert window.scale(0.99) is None

    def test_evicts_oldest_beyond_maxlen(self):
        window = ConformalWindow(maxlen=3, min_observations=1)
        for score in (10.0, 1.0, 2.0, 3.0):
            window.add(score)
        assert window.snapshot() == (1.0, 2.0, 3.0)
        assert window.fill == 3
        assert window.total == 4

    def test_truncate_keeps_most_recent(self):
        window = ConformalWindow(maxlen=10, min_observations=1)
        for score in range(8):
            window.add(float(score))
        window.truncate(3)
        assert window.snapshot() == (5.0, 6.0, 7.0)
        # Truncating below the current fill is a no-op.
        window.truncate(10)
        assert window.fill == 3

    @pytest.mark.parametrize(
        "maxlen, min_obs",
        [(0, 1), (-1, 1), (4, 0), (4, 5)],
    )
    def test_rejects_bad_bounds(self, maxlen, min_obs):
        with pytest.raises(FeedbackError):
            ConformalWindow(maxlen, min_obs)

    @pytest.mark.parametrize("score", [-0.1, float("nan"), float("inf")])
    def test_rejects_bad_scores(self, score):
        window = ConformalWindow(maxlen=4, min_observations=1)
        with pytest.raises(FeedbackError):
            window.add(score)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_confidence(self, confidence):
        window = ConformalWindow(maxlen=4, min_observations=1)
        with pytest.raises(FeedbackError):
            window.scale(confidence)

    def test_rejects_bad_truncate(self):
        window = ConformalWindow(maxlen=4, min_observations=1)
        with pytest.raises(FeedbackError):
            window.truncate(0)


# ---------------------------------------------------------------------------
# drift detector


class TestDriftDetector:
    def test_silent_on_stationary_stream(self):
        rng = random.Random(11)
        detector = DriftDetector(delta=0.25, threshold=12.0)
        fired = [detector.update(rng.gauss(0.0, 1.0)) for _ in range(300)]
        assert not any(fired)

    def test_fires_on_upward_mean_shift(self):
        rng = random.Random(13)
        detector = DriftDetector(delta=0.25, threshold=12.0)
        for _ in range(100):
            assert not detector.update(rng.gauss(0.0, 1.0))
        fired_after = None
        for count in range(1, 41):
            if detector.update(rng.gauss(3.0, 1.0)):
                fired_after = count
                break
        assert fired_after is not None and fired_after <= 20

    def test_fires_on_downward_mean_shift(self):
        rng = random.Random(17)
        detector = DriftDetector(delta=0.25, threshold=12.0)
        for _ in range(100):
            assert not detector.update(rng.gauss(0.0, 1.0))
        assert any(detector.update(rng.gauss(-3.0, 1.0)) for _ in range(40))

    def test_resets_after_detection(self):
        detector = DriftDetector(delta=0.0, threshold=1.0)
        # The running mean starts at 0 after the first sample, so the
        # jump to 5.0 accumulates immediately and must fire quickly.
        detector.update(0.0)
        fired = any(detector.update(5.0) for _ in range(10))
        assert fired
        state = detector.state()
        assert state.observations == 0
        assert state.positive_excursion == 0.0
        assert state.negative_excursion == 0.0

    @pytest.mark.parametrize(
        "delta, threshold",
        [(-0.1, 12.0), (float("nan"), 12.0), (0.25, 0.0), (0.25, float("inf"))],
    )
    def test_rejects_bad_knobs(self, delta, threshold):
        with pytest.raises(FeedbackError):
            DriftDetector(delta=delta, threshold=threshold)

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), "1.0"])
    def test_rejects_bad_input(self, value):
        detector = DriftDetector()
        with pytest.raises(FeedbackError):
            detector.update(value)


# ---------------------------------------------------------------------------
# config


class TestFeedbackConfig:
    def test_defaults_validate(self):
        config = FeedbackConfig()
        assert config.window >= config.min_observations
        assert config.window >= config.fast_window

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_observations": 0},
            {"window": 8, "min_observations": 9},
            {"fast_window": 0},
            {"window": 8, "fast_window": 9, "min_observations": 4},
            {"drift_delta": -1.0},
            {"drift_delta": float("nan")},
            {"drift_threshold": 0.0},
            {"drift_threshold": float("inf")},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(FeedbackError):
            FeedbackConfig(**kwargs)


# ---------------------------------------------------------------------------
# recalibrator


def feed(recalibrator, tenant, residuals, mean=1.0, std=0.5):
    """Observe ``mean + z * std`` for each z, returning the last outcome."""
    outcome = None
    for z in residuals:
        outcome = recalibrator.observe(
            tenant=tenant,
            predicted_mean=mean,
            predicted_std=std,
            actual_seconds=max(0.0, mean + z * std),
        )
    return outcome


class TestFeedbackRecalibrator:
    def test_activation_threshold(self):
        recalibrator = FeedbackRecalibrator(
            FeedbackConfig(window=16, min_observations=4, fast_window=2)
        )
        assert recalibrator.scales_for("t", (0.5,)) is None
        for step in range(3):
            outcome = feed(recalibrator, "t", [0.1])
            assert not outcome.active
            assert recalibrator.scales_for("t", (0.5,)) is None
        outcome = feed(recalibrator, "t", [0.1])
        assert outcome.active
        observations, scales = recalibrator.scales_for("t", (0.5,))
        assert observations == 4
        assert scales == (pytest.approx(0.1),)

    def test_scales_match_brute_force(self):
        rng = random.Random(3)
        recalibrator = FeedbackRecalibrator(
            FeedbackConfig(window=32, min_observations=8, fast_window=4)
        )
        actuals = [abs(rng.gauss(1.0, 0.5)) for _ in range(40)]
        for actual in actuals:
            recalibrator.observe(
                tenant="t",
                predicted_mean=1.0,
                predicted_std=0.5,
                actual_seconds=actual,
            )
        # Recompute the scores with the recalibrator's own arithmetic so
        # the comparison is exact, not approximate.
        held = [abs((actual - 1.0) / 0.5) for actual in actuals[-32:]]
        _, scales = recalibrator.scales_for("t", (0.5, 0.9, 0.99))
        assert scales == (
            brute_force_scale(held, 0.5),
            brute_force_scale(held, 0.9),
            brute_force_scale(held, 0.99),
        )

    def test_tenants_are_isolated(self):
        recalibrator = FeedbackRecalibrator(
            FeedbackConfig(window=16, min_observations=2, fast_window=2)
        )
        feed(recalibrator, "alpha", [0.5] * 8)
        before = recalibrator.scales_for("alpha", (0.5,))
        assert recalibrator.scales_for("beta", (0.5,)) is None
        feed(recalibrator, "beta", [3.0] * 8)
        assert recalibrator.scales_for("alpha", (0.5,)) == before
        _, beta_scales = recalibrator.scales_for("beta", (0.5,))
        assert beta_scales == (3.0,)
        assert recalibrator.scales_for(DEFAULT_TENANT, (0.5,)) is None

    def test_drift_truncates_to_fast_window(self):
        recalibrator = FeedbackRecalibrator(
            FeedbackConfig(
                window=64,
                min_observations=4,
                fast_window=10,
                drift_delta=0.1,
                drift_threshold=3.0,
            )
        )
        feed(recalibrator, "t", [0.0] * 30)
        outcome = None
        for _ in range(30):
            outcome = feed(recalibrator, "t", [6.0])
            if outcome.drift_detected:
                break
        assert outcome.drift_detected
        assert outcome.drifts_total == 1
        assert outcome.window_fill == recalibrator.config.fast_window
        stats = recalibrator.stats()
        (tenant,) = stats.tenants
        assert tenant.drifts_detected == 1
        assert tenant.last_drift_observation == tenant.observations
        # The re-formed quantile reflects the post-shift regime: with the
        # window cut to the freshest scores, the reference-confidence
        # quantile lands on the shifted residual magnitude (the shifted
        # score is the window's maximum, and rank ⌈11 · 0.9⌉ = 10 of 10).
        assert tenant.scale == pytest.approx(6.0)

    def test_point_mass_residual_is_clipped(self):
        recalibrator = FeedbackRecalibrator(
            FeedbackConfig(window=8, min_observations=1, fast_window=1)
        )
        recalibrator.observe(
            tenant="t", predicted_mean=1.0, predicted_std=0.0, actual_seconds=2.0
        )
        _, (scale,) = recalibrator.scales_for("t", (0.5,))
        assert scale == SCORE_CLIP
        exact = recalibrator.observe(
            tenant="t", predicted_mean=2.0, predicted_std=0.0, actual_seconds=2.0
        )
        assert exact.observations == 2

    def test_stats_aggregate_across_tenants(self):
        recalibrator = FeedbackRecalibrator(
            FeedbackConfig(window=8, min_observations=2, fast_window=2)
        )
        assert recalibrator.stats() == FeedbackStats(
            observations=0, drifts_detected=0, tenants=()
        )
        feed(recalibrator, "b", [0.5] * 3)
        feed(recalibrator, "a", [0.5] * 2)
        stats = recalibrator.stats()
        assert stats.observations == 5
        assert [t.tenant for t in stats.tenants] == ["a", "b"]
        assert all(t.active for t in stats.tenants)

    def test_reference_confidence_is_the_headline_interval(self):
        assert REFERENCE_CONFIDENCE == 0.9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant": ""},
            {"tenant": 7},
            {"predicted_mean": float("nan")},
            {"predicted_std": -1.0},
            {"predicted_std": float("inf")},
            {"actual_seconds": -0.5},
        ],
    )
    def test_observe_rejects_bad_input(self, kwargs):
        recalibrator = FeedbackRecalibrator()
        call = dict(
            tenant="t", predicted_mean=1.0, predicted_std=0.5, actual_seconds=1.0
        )
        call.update(kwargs)
        with pytest.raises(FeedbackError):
            recalibrator.observe(**call)
