"""Tests for hardware profiles, the simulator, and calibration."""

import numpy as np
import pytest

from repro.calibration import Calibrator, calibration_suite
from repro.errors import CalibrationError
from repro.hardware import PC1, PC2, CostUnitTruth, HardwareProfile, HardwareSimulator
from repro.optimizer.cost_model import COST_UNIT_NAMES, ResourceCounts


class TestProfiles:
    def test_presets_have_all_units(self):
        for profile in (PC1, PC2):
            assert set(profile.units) == set(COST_UNIT_NAMES)

    def test_pc2_faster_than_pc1(self):
        for unit in COST_UNIT_NAMES:
            assert PC2.units[unit].mean < PC1.units[unit].mean

    def test_random_io_slowest(self):
        for profile in (PC1, PC2):
            assert profile.units["cr"].mean > profile.units["cs"].mean
            assert profile.units["ct"].mean > profile.units["co"].mean

    def test_invalid_unit_rejected(self):
        with pytest.raises(ValueError):
            CostUnitTruth(mean=-1.0, std=0.1)

    def test_missing_unit_rejected(self):
        with pytest.raises(ValueError):
            HardwareProfile(name="bad", units={"cs": CostUnitTruth(1.0, 0.1)})


class TestSimulator:
    def counts(self):
        return {0: ResourceCounts(ns=100, nt=10_000, no=5_000)}

    def test_time_positive(self, pc2_simulator):
        assert pc2_simulator.run_once(self.counts()) > 0

    def test_time_scales_with_work(self):
        simulator = HardwareSimulator(PC2, rng=0)
        small = np.mean([simulator.run_once(self.counts()) for _ in range(50)])
        big_counts = {0: ResourceCounts(ns=1000, nt=100_000, no=50_000)}
        big = np.mean([simulator.run_once(big_counts) for _ in range(50)])
        assert big > 5 * small

    def test_mean_close_to_deterministic_cost(self):
        simulator = HardwareSimulator(PC2, rng=1)
        counts = self.counts()
        times = [simulator.run_once(counts) for _ in range(800)]
        expected = counts[0].total_cost(PC2.unit_means())
        assert np.mean(times) == pytest.approx(expected, rel=0.05)

    def test_variation_across_runs(self, pc1_simulator):
        times = [pc1_simulator.run_once(self.counts()) for _ in range(20)]
        assert np.std(times) > 0

    def test_pc1_noisier_than_pc2(self):
        counts = self.counts()
        sim1 = HardwareSimulator(PC1, rng=2)
        sim2 = HardwareSimulator(PC2, rng=2)
        times1 = [sim1.run_once(counts) for _ in range(400)]
        times2 = [sim2.run_once(counts) for _ in range(400)]
        cv1 = np.std(times1) / np.mean(times1)
        cv2 = np.std(times2) / np.mean(times2)
        assert cv1 > cv2

    def test_empty_plan_zero_time(self, pc2_simulator):
        assert pc2_simulator.run_once({}) == 0.0

    def test_run_repeated_is_mean(self):
        simulator = HardwareSimulator(PC2, rng=3)
        value = simulator.run_repeated(self.counts(), repetitions=5)
        assert value > 0


class TestCalibrationSuite:
    def test_five_queries_per_size(self):
        suite = calibration_suite(10_000)
        assert len(suite) == 5
        assert {q.solves_for for q in suite} == set(COST_UNIT_NAMES)

    def test_ct_query_isolates_ct(self):
        suite = {q.solves_for: q for q in calibration_suite(10_000)}
        counts = suite["ct"].counts.as_dict()
        assert counts["ct"] > 0
        assert all(counts[u] == 0 for u in COST_UNIT_NAMES if u != "ct")


class TestCalibrator:
    def test_recovers_true_means(self, calibrated_units):
        """Calibration must land near the simulated truth (Section 3.1)."""
        for unit in COST_UNIT_NAMES:
            truth = PC2.units[unit].mean
            estimate = calibrated_units.mean(unit)
            assert estimate == pytest.approx(truth, rel=0.25)

    def test_variances_positive(self, calibrated_units):
        for unit in COST_UNIT_NAMES:
            assert calibrated_units.variance(unit) > 0

    def test_without_variance_zeroes(self, calibrated_units):
        stripped = calibrated_units.without_variance()
        for unit in COST_UNIT_NAMES:
            assert stripped.variance(unit) == 0.0
            assert stripped.mean(unit) == calibrated_units.mean(unit)

    def test_means_dict(self, calibrated_units):
        means = calibrated_units.means()
        assert set(means) == set(COST_UNIT_NAMES)

    def test_rejects_single_repetition(self, pc2_simulator):
        with pytest.raises(CalibrationError):
            Calibrator(pc2_simulator, repetitions=1)

    def test_deterministic_with_seeded_simulator(self):
        a = Calibrator(HardwareSimulator(PC2, rng=5), repetitions=4).calibrate()
        b = Calibrator(HardwareSimulator(PC2, rng=5), repetitions=4).calibrate()
        for unit in COST_UNIT_NAMES:
            assert a.mean(unit) == b.mean(unit)
