"""End-to-end integration tests: the full paper pipeline on one database."""

import numpy as np

from repro.calibration import Calibrator
from repro.core import UncertaintyPredictor, Variant
from repro.executor import Executor
from repro.hardware import PC1, PC2, HardwareSimulator
from repro.mathstats import spearman
from repro.optimizer import Optimizer
from repro.sampling import SampleDatabase
from repro.workloads import seljoin_workload


class TestEndToEnd:
    def test_predictions_correlate_with_errors(self, tpch_db):
        """The paper's headline claim (R1) on a small SELJOIN workload."""
        optimizer = Optimizer(tpch_db)
        executor = Executor(tpch_db)
        simulator = HardwareSimulator(PC2, rng=7)
        units = Calibrator(simulator, repetitions=5).calibrate()
        samples = SampleDatabase(tpch_db, sampling_ratio=0.05, seed=5)
        predictor = UncertaintyPredictor(units)

        sigmas, errors = [], []
        for sql in seljoin_workload(num_queries=14, seed=2):
            planned = optimizer.plan_sql(sql)
            result = executor.execute(planned)
            actual = simulator.run_repeated(result.counts)
            prediction = predictor.predict(planned, samples)
            sigmas.append(prediction.std)
            errors.append(abs(prediction.mean - actual))
        assert spearman(sigmas, errors) > 0.5

    def test_point_predictions_reasonable(self, tpch_db):
        """Means land within a factor ~2 of the simulated actuals."""
        optimizer = Optimizer(tpch_db)
        executor = Executor(tpch_db)
        simulator = HardwareSimulator(PC1, rng=8)
        units = Calibrator(simulator, repetitions=5).calibrate()
        samples = SampleDatabase(tpch_db, sampling_ratio=0.1, seed=6)
        predictor = UncertaintyPredictor(units)

        ratios = []
        for sql in seljoin_workload(num_queries=7, seed=3):
            planned = optimizer.plan_sql(sql)
            result = executor.execute(planned)
            actual = simulator.run_repeated(result.counts)
            prediction = predictor.predict(planned, samples)
            ratios.append(prediction.mean / actual)
        median = float(np.median(ratios))
        assert 0.5 < median < 2.0

    def test_skewed_database_pipeline(self, skewed_db):
        """The whole pipeline also runs on the Zipf(z=1) database."""
        optimizer = Optimizer(skewed_db)
        executor = Executor(skewed_db)
        simulator = HardwareSimulator(PC2, rng=9)
        units = Calibrator(simulator, repetitions=4).calibrate()
        samples = SampleDatabase(skewed_db, sampling_ratio=0.05, seed=7)
        predictor = UncertaintyPredictor(units)
        sql = (
            "SELECT COUNT(*) FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
            "AND o_totalprice > 100000"
        )
        planned = optimizer.plan_sql(sql)
        executor.execute(planned)
        prediction = predictor.predict(planned, samples)
        assert prediction.mean > 0
        assert prediction.distribution.variance >= 0

    def test_variance_shrinks_with_more_samples(self, tpch_db, calibrated_units):
        """More samples -> (stochastically) tighter predicted distributions."""
        optimizer = Optimizer(tpch_db)
        predictor = UncertaintyPredictor(calibrated_units)
        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice <= 250000"
        )
        planned = optimizer.plan_sql(sql)
        small_stds, large_stds = [], []
        for seed in range(3):
            small = SampleDatabase(tpch_db, sampling_ratio=0.02, seed=seed)
            large = SampleDatabase(tpch_db, sampling_ratio=0.3, seed=seed)
            small_stds.append(predictor.predict(planned, small).std)
            large_stds.append(predictor.predict(planned, large).std)
        assert np.mean(large_stds) < np.mean(small_stds)

    def test_gee_variant_runs(self, tpch_db, calibrated_units, sample_db):
        optimizer = Optimizer(tpch_db)
        predictor = UncertaintyPredictor(calibrated_units)
        sql = (
            "SELECT o_orderpriority, COUNT(*) FROM orders "
            "GROUP BY o_orderpriority"
        )
        planned = optimizer.plan_sql(sql)
        baseline = predictor.predict(planned, sample_db, use_gee=False)
        with_gee = predictor.predict(planned, sample_db, use_gee=True)
        assert baseline.mean > 0 and with_gee.mean > 0

    def test_all_variants_end_to_end(self, tpch_db, calibrated_units, sample_db):
        optimizer = Optimizer(tpch_db)
        predictor = UncertaintyPredictor(calibrated_units)
        planned = optimizer.plan_sql(
            "SELECT * FROM customer, orders WHERE c_custkey = o_custkey"
        )
        prepared = predictor.prepare(planned, sample_db)
        stds = {
            variant: predictor.predict_prepared(planned, prepared, variant).std
            for variant in Variant
        }
        assert stds[Variant.ALL] >= max(
            stds[Variant.NO_VAR_C], stds[Variant.NO_VAR_X], stds[Variant.NO_COV]
        )
