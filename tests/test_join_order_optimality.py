"""Optimality of the DP join enumerator against brute-force search.

For small relation sets we can enumerate every bushy join tree that
avoids cross products and evaluate the same C_out metric the DP uses;
the DP's answer must attain the minimum.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.logical import JoinEdge
from repro.optimizer.join_order import best_join_order


def tree_cost(aliases, edges, base_rows, edge_selectivity):
    """(min cost, rows) over all bushy, cross-product-free join trees."""

    def solve(subset):
        subset = frozenset(subset)
        if len(subset) == 1:
            (alias,) = subset
            return 0.0, base_rows[alias]
        best = None
        items = sorted(subset)
        for r in range(1, len(items)):
            for left in itertools.combinations(items, r):
                left = frozenset(left)
                right = subset - left
                if min(left) != min(subset):
                    continue  # count each unordered split once
                connecting = [
                    e
                    for e in edges
                    if (
                        (e.left_alias in left and e.right_alias in right)
                        or (e.left_alias in right and e.right_alias in left)
                    )
                ]
                if not connecting:
                    continue
                left_solution = solve(left)
                right_solution = solve(right)
                if left_solution is None or right_solution is None:
                    continue
                selectivity = 1.0
                for edge in connecting:
                    selectivity *= edge_selectivity(edge)
                rows = max(
                    left_solution[1] * right_solution[1] * selectivity, 1.0
                )
                cost = left_solution[0] + right_solution[0] + rows
                if best is None or cost < best[0]:
                    best = (cost, rows)
        return best

    return solve(frozenset(aliases))


def evaluate_tree(tree, base_rows, edge_selectivity):
    """C_out of a JoinTree produced by the DP."""
    if tree.is_leaf:
        return 0.0, base_rows[tree.alias]
    left_cost, left_rows = evaluate_tree(tree.left, base_rows, edge_selectivity)
    right_cost, right_rows = evaluate_tree(tree.right, base_rows, edge_selectivity)
    selectivity = 1.0
    for edge in tree.edges:
        selectivity *= edge_selectivity(edge)
    rows = max(left_rows * right_rows * selectivity, 1.0)
    return left_cost + right_cost + rows, rows


def chain_edges(aliases):
    return [
        JoinEdge(aliases[i], "k", aliases[i + 1], "k")
        for i in range(len(aliases) - 1)
    ]


class TestDpOptimality:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.floats(1.0, 1e6), min_size=3, max_size=5
        ),
        sel_exponents=st.lists(st.integers(-6, -1), min_size=2, max_size=4),
    )
    def test_chain_queries_optimal(self, rows, sel_exponents):
        aliases = [f"t{i}" for i in range(len(rows))]
        base_rows = dict(zip(aliases, rows))
        edges = chain_edges(aliases)
        selectivities = {}
        for i, edge in enumerate(edges):
            exponent = sel_exponents[i % len(sel_exponents)]
            selectivities[id(edge)] = 10.0 ** exponent

        def edge_sel(edge):
            for candidate in edges:
                if (
                    candidate.left_alias == edge.left_alias
                    and candidate.right_alias == edge.right_alias
                ):
                    return selectivities[id(candidate)]
            raise KeyError(edge)

        tree = best_join_order(base_rows, edges, edge_sel)
        dp_cost, _ = evaluate_tree(tree, base_rows, edge_sel)
        optimal = tree_cost(aliases, edges, base_rows, edge_sel)
        assert optimal is not None
        assert dp_cost == pytest.approx(optimal[0], rel=1e-9)

    def test_star_query_optimal(self):
        aliases = ["fact", "d1", "d2", "d3"]
        base_rows = {"fact": 1e6, "d1": 100.0, "d2": 1000.0, "d3": 10.0}
        edges = [
            JoinEdge("fact", "k1", "d1", "k1"),
            JoinEdge("fact", "k2", "d2", "k2"),
            JoinEdge("fact", "k3", "d3", "k3"),
        ]
        selectivity_map = {"d1": 1e-2, "d2": 1e-3, "d3": 1e-1}

        def edge_sel(edge):
            return selectivity_map[edge.right_alias]

        tree = best_join_order(base_rows, edges, edge_sel)
        dp_cost, _ = evaluate_tree(tree, base_rows, edge_sel)
        optimal = tree_cost(aliases, edges, base_rows, edge_sel)
        assert dp_cost == pytest.approx(optimal[0], rel=1e-9)

    def test_cycle_query_optimal(self):
        aliases = ["a", "b", "c"]
        base_rows = {"a": 1e4, "b": 1e5, "c": 1e3}
        edges = [
            JoinEdge("a", "k", "b", "k"),
            JoinEdge("b", "k", "c", "k"),
            JoinEdge("a", "k", "c", "k"),
        ]

        def edge_sel(edge):
            return 1e-4

        tree = best_join_order(base_rows, edges, edge_sel)
        dp_cost, _ = evaluate_tree(tree, base_rows, edge_sel)
        optimal = tree_cost(aliases, edges, base_rows, edge_sel)
        assert dp_cost == pytest.approx(optimal[0], rel=1e-9)
