"""The SoA batch kernels, differentially locked to the scalar path.

The contract under test (docs/service.md "Batch kernels"): every number
the ``batch_kernel="soa"`` path serves — means, variances, stds, all
three variance-breakdown terms, per-unit means, and both bounds of
every confidence interval — is *bitwise* identical to the scalar
per-query reference loop. Closeness is not enough: the SoA path exists
so deployments can switch kernels without re-validating numerics, and
that argument only holds at the bit level. The harness therefore packs
every float with ``struct.pack("<d", ...)`` and compares bytes across
hundreds of seeded random batches (ragged sizes, duplicate SQL,
variant/mpl/confidence fan-outs, point-mass variances, single-node and
empty-sample plans), plus the algebraic properties that make a batch
kernel trustworthy: permutation invariance, batch-of-N == N batches-of-1,
and cache-hit == cold-miss.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.core.predictor import Variant
from repro.errors import PredictionError
from repro.service import PredictionService, plan_signature, plan_signature_hash
from repro.service.kernels import (
    BATCH_KERNELS,
    assemble_batch,
    batch_intervals,
    build_batch_plan,
    segment_sum,
)
from repro.serving.routing import ConsistentHashRouter
from repro.workloads.tpch_templates import TPCH_TEMPLATES

ALL_VARIANTS = tuple(Variant)
MPL_CHOICES = (1, 2, 3, 5)
CONFIDENCE_CHOICES = (0.2, 0.5, 0.9, 0.95, 0.99)

#: Handwritten edge plans: single-node scans, selective predicates that
#: leave (nearly) empty samples, joins small and large.
EDGE_SQLS = [
    "SELECT * FROM region",
    "SELECT * FROM nation",
    "SELECT * FROM supplier WHERE s_acctbal > 500",
    "SELECT * FROM orders WHERE o_totalprice > 999999999",
    "SELECT * FROM customer WHERE c_acctbal > 0",
    "SELECT * FROM nation, region WHERE n_regionkey = r_regionkey",
    (
        "SELECT * FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_totalprice > 100000"
    ),
    (
        "SELECT * FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_totalprice > 200000"
    ),
]


def _query_pool():
    rng = np.random.default_rng(20140901)
    pool = list(EDGE_SQLS)
    for template in TPCH_TEMPLATES[:4]:
        pool.append(template.instantiate(rng))
    return pool


@pytest.fixture(scope="module")
def service(tpch_db, calibrated_units):
    svc = PredictionService(
        tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
    )
    # Warm every pool plan once so differential runs compare warm state
    # against warm state; per-query cache flags are only comparable on
    # equal cache states.
    svc.predict_batch(_query_pool())
    return svc


@pytest.fixture(scope="module")
def pool():
    return _query_pool()


def _pack(value):
    return struct.pack("<d", value)


def _result_payload(result, confidences):
    """Every served number of one PredictionResult, as exact bytes."""
    breakdown = result.breakdown
    blob = [
        _pack(result.mean),
        _pack(breakdown.variance),
        _pack(result.std),
        _pack(breakdown.exact_selectivity_term),
        _pack(breakdown.bounded_covariance_term),
        _pack(breakdown.cost_unit_term),
    ]
    for name, value in breakdown.per_unit_mean.items():
        blob.append(name.encode())
        blob.append(_pack(value))
    for confidence in confidences:
        low, high = result.confidence_interval(confidence)
        blob.append(_pack(low))
        blob.append(_pack(high))
    return blob


def _query_payload(prediction, confidences):
    blob = [repr(prediction.sql).encode(), prediction.prepare_was_cached]
    for (variant, mpl), result in prediction.results.items():
        blob.append((variant.value, mpl))
        blob.extend(_result_payload(result, confidences))
    return blob


def _batch_payloads(service, queries, variants, mpls, confidences, kernel,
                    skip_failures=False):
    batch = service.predict_batch(
        queries,
        variants=variants,
        mpls=mpls,
        skip_failures=skip_failures,
        kernel=kernel,
        confidences=confidences if kernel == "soa" else None,
    )
    payloads = [
        _query_payload(prediction, confidences) for prediction in batch
    ]
    failures = [
        (failure.index, failure.sql, failure.code) for failure in batch.failures
    ]
    return payloads, failures


# ---------------------------------------------------------------------------
# segment_sum: the integer segmented reduction under the ragged arrays.
# ---------------------------------------------------------------------------


class TestSegmentSum:
    def test_plain_segments(self):
        values = np.array([1, 2, 3, 4, 5, 6], dtype=np.intp)
        offsets = np.array([0, 2, 3, 6], dtype=np.intp)
        assert segment_sum(values, offsets).tolist() == [3, 3, 15]

    def test_empty_segment_in_the_middle(self):
        values = np.array([1, 2, 3], dtype=np.intp)
        offsets = np.array([0, 1, 1, 3], dtype=np.intp)
        assert segment_sum(values, offsets).tolist() == [1, 0, 5]

    def test_trailing_empty_segment(self):
        # reduceat would raise on a segment starting at len(values).
        values = np.array([4, 5], dtype=np.intp)
        offsets = np.array([0, 2, 2], dtype=np.intp)
        assert segment_sum(values, offsets).tolist() == [9, 0]

    def test_leading_empty_segment(self):
        # reduceat would return values[0] for the empty first segment.
        values = np.array([7, 8], dtype=np.intp)
        offsets = np.array([0, 0, 2], dtype=np.intp)
        assert segment_sum(values, offsets).tolist() == [0, 15]

    def test_all_segments_empty(self):
        values = np.zeros(0, dtype=np.intp)
        offsets = np.array([0, 0, 0], dtype=np.intp)
        assert segment_sum(values, offsets).tolist() == [0, 0]

    def test_no_segments(self):
        values = np.zeros(0, dtype=np.intp)
        offsets = np.array([0], dtype=np.intp)
        assert segment_sum(values, offsets).tolist() == []

    def test_decreasing_offsets_rejected(self):
        values = np.array([1, 2, 3], dtype=np.intp)
        with pytest.raises(ValueError):
            segment_sum(values, np.array([0, 2, 1, 3], dtype=np.intp))

    def test_nonzero_start_rejected(self):
        values = np.array([1, 2, 3], dtype=np.intp)
        with pytest.raises(ValueError):
            segment_sum(values, np.array([1, 3], dtype=np.intp))


# ---------------------------------------------------------------------------
# BatchPlan: interning, dedup, padding, segment offsets, validation.
# ---------------------------------------------------------------------------


def _entries(service, queries):
    entries = []
    for sql in queries:
        planned = service.plan(sql)
        prepared, _ = service.prepare(planned)
        entries.append((planned, prepared))
    return entries


class TestBatchPlan:
    def test_empty_batch(self, service):
        batch_plan = build_batch_plan([])
        assert len(batch_plan) == 0
        assert batch_plan.num_queries == 0
        assert batch_plan.node_offsets.tolist() == [0]
        assert batch_plan.node_means.size == 0
        padded, mask = batch_plan.padded_node_means()
        assert padded.shape == (0, 0)
        assert mask.shape == (0, 0)
        batch_plan.validate()

    def test_batch_of_one(self, service, pool):
        batch_plan = build_batch_plan(_entries(service, [pool[0]]))
        assert len(batch_plan) == 1
        assert batch_plan.query_slots.tolist() == [0]
        counts = batch_plan.node_counts
        assert counts.tolist() == [batch_plan.node_means.size]
        assert counts[0] > 0

    def test_all_identical_plans_share_one_slot(self, service, pool):
        batch_plan = build_batch_plan(_entries(service, [pool[0]] * 5))
        assert len(batch_plan) == 1
        assert batch_plan.query_slots.tolist() == [0] * 5
        assert batch_plan.num_queries == 5

    def test_dedup_keys_on_signature_not_hash(self, service, pool):
        batch_plan = build_batch_plan(
            _entries(service, [pool[0], pool[1], pool[0]])
        )
        assert len(batch_plan) == 2
        assert batch_plan.query_slots.tolist() == [0, 1, 0]
        assert batch_plan.signatures[0] != batch_plan.signatures[1]

    def test_signature_hashes_are_interned_crc32(self, service, pool):
        batch_plan = build_batch_plan(_entries(service, pool[:4]))
        for signature, crc in zip(
            batch_plan.signatures, batch_plan.signature_hashes
        ):
            assert int(crc) == zlib.crc32(signature.encode("utf-8"))

    def test_padded_node_means_roundtrip(self, service, pool):
        batch_plan = build_batch_plan(_entries(service, pool[:6]))
        padded, mask = batch_plan.padded_node_means(fill=-1.0)
        assert mask.sum(axis=1).tolist() == batch_plan.node_counts.tolist()
        assert padded[mask].tolist() == batch_plan.node_means.tolist()
        assert (padded[~mask] == -1.0).all()

    def test_validate_localizes_bad_plan(self, service, pool):
        batch_plan = build_batch_plan(_entries(service, pool[:3]))
        start = int(batch_plan.node_offsets[1])
        batch_plan.node_variances = batch_plan.node_variances.copy()
        batch_plan.node_variances[start] = -1.0
        with pytest.raises(PredictionError, match=r"\[1\]"):
            batch_plan.validate()


# ---------------------------------------------------------------------------
# The differential harness: SoA bitwise == scalar over random batches.
# ---------------------------------------------------------------------------


def _random_batch(rng, pool):
    size = int(rng.integers(0, 9))
    queries = [pool[int(i)] for i in rng.integers(0, len(pool), size=size)]
    variants = [
        ALL_VARIANTS[int(i)]
        for i in rng.permutation(len(ALL_VARIANTS))[: int(rng.integers(1, 5))]
    ]
    mpls = [
        MPL_CHOICES[int(i)]
        for i in rng.permutation(len(MPL_CHOICES))[: int(rng.integers(1, 4))]
    ]
    confidences = tuple(
        CONFIDENCE_CHOICES[int(i)]
        for i in sorted(
            rng.permutation(len(CONFIDENCE_CHOICES))[: int(rng.integers(0, 4))]
        )
    )
    return queries, variants, mpls, confidences


class TestDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_soa_bitwise_equals_scalar_on_random_batches(
        self, service, pool, seed
    ):
        """20 random batches per seed, 200 total: every byte must agree."""
        rng = np.random.default_rng(1000 + seed)
        for _ in range(20):
            queries, variants, mpls, confidences = _random_batch(rng, pool)
            scalar, scalar_failures = _batch_payloads(
                service, queries, variants, mpls, confidences, "scalar"
            )
            soa, soa_failures = _batch_payloads(
                service, queries, variants, mpls, confidences, "soa"
            )
            assert soa == scalar
            assert soa_failures == scalar_failures

    def test_empty_batch(self, service):
        for kernel in BATCH_KERNELS:
            batch = service.predict_batch(
                [], kernel=kernel, confidences=(0.5,)
            )
            assert batch.predictions == []
            assert batch.failures == []

    def test_skip_failures_differential(self, service, pool):
        queries = [pool[0], "SELEC nope", pool[1], pool[0]]
        scalar, scalar_failures = _batch_payloads(
            service, queries, [Variant.ALL, Variant.NO_COV], [1, 3],
            (0.5, 0.99), "scalar", skip_failures=True,
        )
        soa, soa_failures = _batch_payloads(
            service, queries, [Variant.ALL, Variant.NO_COV], [1, 3],
            (0.5, 0.99), "soa", skip_failures=True,
        )
        assert soa == scalar
        assert len(soa_failures) == 1
        assert soa_failures == scalar_failures
        assert soa_failures[0][0] == 1

    def test_abort_on_failure_raises_like_scalar(self, service, pool):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            service.predict_batch([pool[0], "SELEC nope"], kernel="soa")

    def test_point_mass_variance_intervals(self, tpch_db, calibrated_units):
        """Zero-variance units + NoVar[X]: variance 0, interval (m, m)."""
        flat = PredictionService(
            tpch_db,
            calibrated_units.without_variance(),
            sampling_ratio=0.05,
            seed=3,
        )
        queries = EDGE_SQLS[:3] * 2
        variants = [Variant.NO_VAR_X, Variant.ALL]
        flat.predict_batch(queries, variants=variants)  # warm
        confidences = (0.5, 0.9)
        scalar, _ = _batch_payloads(
            flat, queries, variants, [1, 2], confidences, "scalar"
        )
        soa, _ = _batch_payloads(
            flat, queries, variants, [1, 2], confidences, "soa"
        )
        assert soa == scalar
        batch = flat.predict_batch(
            queries, variants=variants, kernel="soa", confidences=confidences
        )
        point_masses = 0
        for prediction in batch:
            result = prediction.result(Variant.NO_VAR_X, 1)
            if result.breakdown.variance == 0.0:
                point_masses += 1
                clamped = max(result.mean, 0.0)
                assert result.confidence_interval(0.9) == (clamped, clamped)
        assert point_masses == len(queries)

    def test_unknown_kernel_rejected(self, service, pool):
        with pytest.raises(PredictionError, match="unknown batch kernel"):
            service.predict_batch([pool[0]], kernel="simd")
        with pytest.raises(PredictionError, match="unknown batch kernel"):
            PredictionService(
                service._database,
                service._preparer.units,
                batch_kernel="simd",
            )

    def test_bad_confidence_rejected(self, service, pool):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError, match="confidence"):
                service.predict_batch(
                    [pool[0]], kernel="soa", confidences=(bad,)
                )


# ---------------------------------------------------------------------------
# Algebraic properties of a trustworthy batch kernel.
# ---------------------------------------------------------------------------


class TestBatchProperties:
    VARIANTS = (Variant.ALL, Variant.NO_VAR_X)
    MPLS = (1, 3)
    CONFIDENCES = (0.5, 0.95)

    def _payloads(self, service, queries):
        return _batch_payloads(
            service, queries, self.VARIANTS, self.MPLS, self.CONFIDENCES, "soa"
        )[0]

    def test_permutation_invariance(self, service, pool):
        rng = np.random.default_rng(7)
        queries = [pool[int(i)] for i in rng.integers(0, len(pool), size=7)]
        order = [int(i) for i in rng.permutation(len(queries))]
        straight = self._payloads(service, queries)
        shuffled = self._payloads(service, [queries[i] for i in order])
        assert [straight[i] for i in order] == shuffled

    def test_batch_of_n_equals_n_batches_of_one(self, service, pool):
        queries = [pool[0], pool[3], pool[0], pool[5]]
        whole = self._payloads(service, queries)
        singles = [self._payloads(service, [sql])[0] for sql in queries]
        assert whole == singles

    def test_cache_hit_equals_cold_miss(self, tpch_db, calibrated_units):
        """Two identically-built services: cold scalar == warm SoA."""
        queries = [EDGE_SQLS[0], EDGE_SQLS[5], EDGE_SQLS[0]]

        def fresh():
            return PredictionService(
                tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
            )

        cold, _ = _batch_payloads(
            fresh(), queries, self.VARIANTS, self.MPLS, self.CONFIDENCES,
            "scalar",
        )
        warm_service = fresh()
        warm_service.predict_batch(queries)  # populate the prepared cache
        warm, _ = _batch_payloads(
            warm_service, queries, self.VARIANTS, self.MPLS, self.CONFIDENCES,
            "soa",
        )
        # Cache flags legitimately differ between a cold and a warm run;
        # every served number must not.
        def strip(payloads):
            return [payload[2:] for payload in payloads]

        assert strip(warm) == strip(cold)
        assert [payload[:1] for payload in warm] == [
            payload[:1] for payload in cold
        ]

    def test_counters_match_scalar_on_completed_batches(
        self, tpch_db, calibrated_units
    ):
        queries = [EDGE_SQLS[0], EDGE_SQLS[1], EDGE_SQLS[0]]

        def deltas(kernel):
            svc = PredictionService(
                tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
            )
            svc.predict_batch(queries)  # identical warm state for both
            batch = svc.predict_batch(
                queries, variants=self.VARIANTS, mpls=self.MPLS, kernel=kernel
            )
            return batch.stats

        assert deltas("soa") == deltas("scalar")


# ---------------------------------------------------------------------------
# Interned plan-signature hashing: one definition for every consumer.
# ---------------------------------------------------------------------------


class _PlannedStub:
    """A mutable stand-in exposing just what plan_signature reads."""

    def __init__(self, planned):
        self.root = planned.root
        self.alias_tables = planned.alias_tables


class TestSignatureInterning:
    def test_signature_and_hash_are_interned(self, optimizer):
        planned = optimizer.plan_sql(EDGE_SQLS[0])
        signature = plan_signature(planned)
        cached = planned.cached_plan_signature
        assert cached[0] is planned.root
        assert cached[1] == signature
        assert cached[2] == zlib.crc32(signature.encode("utf-8"))
        # Repeat reads resolve from the interned tuple.
        assert plan_signature(planned) is cached[1]
        assert plan_signature_hash(planned) == cached[2]

    def test_hash_matches_crc32_of_signature(self, optimizer):
        for sql in EDGE_SQLS[:4]:
            planned = optimizer.plan_sql(sql)
            assert plan_signature_hash(planned) == zlib.crc32(
                plan_signature(planned).encode("utf-8")
            )

    def test_router_agrees_with_interned_hash(self, optimizer):
        """The ring must place the interned hash exactly where it places
        the signature string — the regression the shared definition
        exists to prevent."""
        router = ConsistentHashRouter(workers=5, replicas=16)
        for sql in EDGE_SQLS:
            planned = optimizer.plan_sql(sql)
            assert router.owner(plan_signature(planned)) == router.owner_point(
                plan_signature_hash(planned)
            )

    def test_root_replacement_invalidates_cache(self, optimizer):
        first = optimizer.plan_sql(EDGE_SQLS[0])
        second = optimizer.plan_sql(EDGE_SQLS[5])
        stub = _PlannedStub(first)
        original = plan_signature(stub)
        assert original == plan_signature(first)
        stub.root = second.root
        stub.alias_tables = second.alias_tables
        assert plan_signature(stub) == plan_signature(second)
        assert plan_signature_hash(stub) == plan_signature_hash(second)

    def test_frozen_stand_ins_still_answer(self, optimizer):
        planned = optimizer.plan_sql(EDGE_SQLS[0])

        class _Frozen:
            __slots__ = ("root", "alias_tables")

            def __init__(self):
                object.__setattr__(self, "root", planned.root)
                object.__setattr__(
                    self, "alias_tables", planned.alias_tables
                )

            def __setattr__(self, name, value):
                raise AttributeError(name)

        frozen = _Frozen()
        assert plan_signature(frozen) == plan_signature(planned)
        assert plan_signature_hash(frozen) == plan_signature_hash(planned)


# ---------------------------------------------------------------------------
# assemble_batch isolation and interval validation.
# ---------------------------------------------------------------------------


class _PoisonedAssembler:
    def unit_moments(self, options):
        raise PredictionError("poisoned assembler")


class TestAssembleBatchIsolation:
    def _batch_plan(self, service, queries, poison_slot=None):
        batch_plan = build_batch_plan(_entries(service, queries))
        if poison_slot is not None:
            prepared = batch_plan.prepared[poison_slot]
            prepared._assembler = _PoisonedAssembler()
            prepared._assembler_root = batch_plan.planned[poison_slot].root
        return batch_plan

    def test_isolate_records_plan_errors(self, tpch_db, calibrated_units):
        svc = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
        )
        batch_plan = self._batch_plan(
            svc, [EDGE_SQLS[0], EDGE_SQLS[1]], poison_slot=1
        )
        assembly = assemble_batch(
            batch_plan, svc._concurrent, (Variant.ALL,), (1,), isolate=True
        )
        assert set(assembly.plan_errors) == {1}
        assert (assembly.mean[1] == 0.0).all()
        assert assembly.mean[0, 0, 0] > 0.0

    def test_no_isolation_raises(self, tpch_db, calibrated_units):
        svc = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
        )
        batch_plan = self._batch_plan(svc, [EDGE_SQLS[0]], poison_slot=0)
        with pytest.raises(PredictionError, match="poisoned"):
            assemble_batch(
                batch_plan, svc._concurrent, (Variant.ALL,), (1,)
            )

    def test_interval_confidence_validation(self, service, pool):
        batch_plan = build_batch_plan(_entries(service, [pool[0]]))
        assembly = assemble_batch(
            batch_plan, service._concurrent, (Variant.ALL,), (1,)
        )
        intervals = batch_intervals(assembly, (0.5, 0.9))
        assert intervals.shape == (1, 1, 1, 2, 2)
        assert (intervals[..., 0] <= intervals[..., 1]).all()
        with pytest.raises(ValueError, match="confidence"):
            batch_intervals(assembly, (1.0,))
