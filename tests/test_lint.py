"""The lint gate: dead imports, stale __all__ entries, and unseeded
randomness in benchmarks fail the suite.

Runs ``tools/lint.py`` (the dependency-free AST checker; the container
has no ruff) over the whole repo, so a PR that leaves unused imports
behind — easy to do when refactoring across subsystem boundaries —
fails tier-1 instead of rotting silently. The unseeded-RNG check keeps
benchmark scenarios bitwise-reproducible (the generalization of the
``hash()`` flakiness that once made metric benches drift across runs).
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "repro_tools_lint", REPO_ROOT / "tools" / "lint.py"
)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def test_repo_is_lint_clean():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"lint problems:\n{result.stdout}"
    assert "0 problems" in result.stdout


class TestBenchmarkRngCheck:
    """Seeded-generator discipline inside benchmarks/ files."""

    def check(self, tmp_path, source, filename="bench_demo.py",
              directory="benchmarks"):
        bench_dir = tmp_path / directory
        bench_dir.mkdir(exist_ok=True)
        path = bench_dir / filename
        path.write_text(source)
        return lint.check_file(path)

    @pytest.mark.parametrize("source", [
        "import random\nx = random.random()\n",
        "import random\nrandom.seed(0)\n",
        "import random as rnd\nrnd.shuffle([1, 2])\n",
        "import numpy as np\nx = np.random.rand(3)\n",
        "import numpy\nx = numpy.random.randint(10)\n",
        "from numpy import random\nx = random.random()\n",
        "from numpy.random import rand\nx = rand(3)\n",
    ])
    def test_global_rng_flagged(self, tmp_path, source):
        problems = self.check(tmp_path, source)
        assert len(problems) == 1
        assert "process-global" in problems[0]

    @pytest.mark.parametrize("source", [
        "import random\nrng = random.Random()\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "from numpy.random import default_rng\nrng = default_rng()\n",
    ])
    def test_unseeded_constructor_flagged(self, tmp_path, source):
        problems = self.check(tmp_path, source)
        assert len(problems) == 1
        assert "without an explicit seed" in problems[0]

    @pytest.mark.parametrize("source", [
        "import random\nrng = random.Random(7)\n",
        "import numpy as np\nrng = np.random.default_rng(0)\n",
        "import numpy as np\nrng = np.random.default_rng(seed=3)\n",
        "from numpy.random import default_rng\nrng = default_rng(11)\n",
        "import numpy as np\nrng = np.random.RandomState(5)\n",
    ])
    def test_seeded_constructor_clean(self, tmp_path, source):
        assert self.check(tmp_path, source) == []

    def test_hash_flagged_in_benchmarks(self, tmp_path):
        problems = self.check(tmp_path, "x = hash('query text')\n")
        assert len(problems) == 1
        assert "hash()" in problems[0]
        assert "crc32" in problems[0]

    def test_rng_check_skipped_outside_benchmarks(self, tmp_path):
        # The discipline applies to benchmarks only: library code may
        # keep optional-seed APIs, tests may use hash().
        source = "import random\nx = random.random()\ny = hash('q')\n"
        assert self.check(
            tmp_path, source, filename="module.py", directory="pkg"
        ) == []

    def test_real_benchmarks_are_clean(self):
        problems = []
        for path in sorted((REPO_ROOT / "benchmarks").glob("*.py")):
            tree = lint.ast.parse(path.read_text(), filename=str(path))
            problems.extend(lint.check_benchmark_rng(path, tree))
        assert problems == []
