"""The lint gate: dead imports and stale __all__ entries fail the suite.

Runs ``tools/lint.py`` (the dependency-free AST checker; the container
has no ruff) over the whole repo, so a PR that leaves unused imports
behind — easy to do when refactoring across subsystem boundaries —
fails tier-1 instead of rotting silently.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_repo_is_lint_clean():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"lint problems:\n{result.stdout}"
    assert "0 problems" in result.stdout
