"""Tests for normal moments, the monomial engine, and correlations."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathstats import (
    NormalDistribution,
    monomial_cov,
    monomial_mean,
    monomial_var,
    noncentral_moment,
    pearson,
    ranks,
    spearman,
)

finite_floats = st.floats(-5, 5, allow_nan=False)
small_vars = st.floats(0.0, 4.0, allow_nan=False)


class TestNoncentralMoments:
    """Table 3 of the paper."""

    @given(mu=finite_floats, var=small_vars)
    @settings(max_examples=50, deadline=None)
    def test_table3_formulas(self, mu, var):
        assert noncentral_moment(mu, var, 1) == pytest.approx(mu, abs=1e-9)
        assert noncentral_moment(mu, var, 2) == pytest.approx(mu**2 + var, rel=1e-9, abs=1e-9)
        assert noncentral_moment(mu, var, 3) == pytest.approx(
            mu**3 + 3 * mu * var, rel=1e-9, abs=1e-9
        )
        assert noncentral_moment(mu, var, 4) == pytest.approx(
            mu**4 + 6 * mu**2 * var + 3 * var**2, rel=1e-9, abs=1e-9
        )

    def test_zeroth_moment(self):
        assert noncentral_moment(3.0, 2.0, 0) == 1.0

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(0)
        draws = rng.normal(1.5, 0.5, 2_000_000)
        for k in range(1, 5):
            assert noncentral_moment(1.5, 0.25, k) == pytest.approx(
                float((draws**k).mean()), rel=0.01
            )

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            noncentral_moment(0.0, 1.0, -1)


class TestNormalDistribution:
    def test_cdf_symmetry(self):
        dist = NormalDistribution(0.0, 1.0)
        assert dist.cdf(0.0) == pytest.approx(0.5)
        assert dist.cdf(1.0) + dist.cdf(-1.0) == pytest.approx(1.0)

    def test_quantile_inverts_cdf(self):
        dist = NormalDistribution(3.0, 4.0)
        for p in (0.1, 0.5, 0.9, 0.975):
            assert dist.cdf(dist.quantile(p)) == pytest.approx(p, abs=1e-9)

    def test_interval_mass(self):
        dist = NormalDistribution(10.0, 9.0)
        low, high = dist.interval(0.95)
        assert dist.prob_within(low, high) == pytest.approx(0.95, abs=1e-9)

    def test_matches_scipy(self):
        dist = NormalDistribution(2.0, 5.0)
        ref = scipy.stats.norm(2.0, math.sqrt(5.0))
        for x in (-3.0, 0.0, 2.0, 4.5):
            assert dist.cdf(x) == pytest.approx(ref.cdf(x), abs=1e-12)
            assert dist.pdf(x) == pytest.approx(ref.pdf(x), abs=1e-12)

    def test_degenerate_distribution(self):
        dist = NormalDistribution(5.0, 0.0)
        assert dist.cdf(4.9) == 0.0
        assert dist.cdf(5.0) == 1.0
        assert dist.quantile(0.3) == 5.0

    def test_degenerate_prob_within_contains_point_mass(self):
        # Regression: cdf(mean) = 1.0 made prob_within(mean, mean + eps)
        # report 0.0 although all the mass lies inside the interval.
        dist = NormalDistribution(5.0, 0.0)
        assert dist.prob_within(5.0, 5.1) == 1.0
        assert dist.prob_within(4.9, 5.0) == 1.0
        assert dist.prob_within(4.9, 5.1) == 1.0
        assert dist.prob_within(5.0, 5.0) == 1.0

    def test_degenerate_prob_within_excludes_outside(self):
        dist = NormalDistribution(5.0, 0.0)
        assert dist.prob_within(5.1, 6.0) == 0.0
        assert dist.prob_within(4.0, 4.9) == 0.0

    def test_prob_within_continuous_unaffected(self):
        dist = NormalDistribution(0.0, 1.0)
        assert dist.prob_within(-1.0, 1.0) == pytest.approx(0.6826894921)

    def test_sum_of_independent(self):
        total = NormalDistribution(1.0, 2.0) + NormalDistribution(3.0, 4.0)
        assert total.mean == 4.0 and total.variance == 6.0

    def test_scale_and_shift(self):
        dist = NormalDistribution(2.0, 3.0).scale(2.0).shift(1.0)
        assert dist.mean == 5.0 and dist.variance == 12.0

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, -1.0)

    def test_bad_quantile_level(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, 1.0).quantile(1.5)


class TestMonomialEngine:
    DISTS = {1: (0.3, 0.01), 2: (0.6, 0.04), 3: (0.1, 0.0)}

    def test_mean_factorizes(self):
        mean = monomial_mean({1: 1, 2: 1}, self.DISTS)
        assert mean == pytest.approx(0.3 * 0.6)

    def test_mean_with_power(self):
        mean = monomial_mean({1: 2}, self.DISTS)
        assert mean == pytest.approx(0.3**2 + 0.01)

    def test_cov_independent_vars_zero(self):
        assert monomial_cov({1: 1}, {2: 1}, self.DISTS) == pytest.approx(0.0)

    def test_var_linear(self):
        assert monomial_var({1: 1}, self.DISTS) == pytest.approx(0.01)

    def test_cov_x_x2(self):
        # Cov(X, X^2) = 2 mu sigma^2 for a normal.
        got = monomial_cov({1: 1}, {1: 2}, self.DISTS)
        assert got == pytest.approx(2 * 0.3 * 0.01, rel=1e-9)

    def test_var_product_independent(self):
        # Var[XY] = mx^2 vy + my^2 vx + vx vy.
        got = monomial_var({1: 1, 2: 1}, self.DISTS)
        expected = 0.3**2 * 0.04 + 0.6**2 * 0.01 + 0.01 * 0.04
        assert got == pytest.approx(expected, rel=1e-9)

    def test_zero_variance_var_is_zero(self):
        assert monomial_var({3: 1}, self.DISTS) == pytest.approx(0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        mu1=st.floats(0.05, 0.9),
        v1=st.floats(0.0001, 0.01),
        mu2=st.floats(0.05, 0.9),
        v2=st.floats(0.0001, 0.01),
    )
    def test_monte_carlo_cross_check(self, mu1, v1, mu2, v2):
        """Property: monomial covariance matches simulation."""
        dists = {1: (mu1, v1), 2: (mu2, v2)}
        rng = np.random.default_rng(12)
        x = rng.normal(mu1, math.sqrt(v1), 400_000)
        y = rng.normal(mu2, math.sqrt(v2), 400_000)
        got = monomial_cov({1: 1, 2: 1}, {1: 1}, dists)  # Cov(XY, X)
        sim = float(np.cov(x * y, x)[0, 1])
        assert got == pytest.approx(sim, rel=0.15, abs=1e-5)


class TestCorrelation:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_spearman_monotone_nonlinear(self):
        x = np.arange(1.0, 20.0)
        assert spearman(x, np.exp(x / 5)) == pytest.approx(1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=60)
        y = 0.7 * x + rng.normal(size=60)
        assert pearson(x, y) == pytest.approx(scipy.stats.pearsonr(x, y)[0], abs=1e-12)
        assert spearman(x, y) == pytest.approx(
            scipy.stats.spearmanr(x, y)[0], abs=1e-12
        )

    def test_matches_scipy_with_ties(self):
        x = np.array([1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0])
        y = np.array([2.0, 1.0, 3.0, 3.0, 5.0, 4.0, 6.0])
        assert spearman(x, y) == pytest.approx(scipy.stats.spearmanr(x, y)[0], abs=1e-12)

    def test_ranks_average_ties(self):
        assert ranks([10.0, 20.0, 20.0, 30.0]).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_degenerate_inputs(self):
        assert math.isnan(pearson([1.0], [2.0]))
        assert math.isnan(pearson([1.0, 1.0], [2.0, 3.0]))  # zero variance

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            spearman([1.0, 2.0], [1.0])

    def test_outlier_sensitivity_rp_vs_rs(self):
        """The Figure 3 phenomenon: rp is outlier-sensitive, rs robust."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, 40)
        y = x + rng.normal(0, 0.05, 40)
        x_out = np.append(x, 50.0)
        y_out = np.append(y, 0.0)  # a wild outlier breaking the trend
        assert abs(pearson(x_out, y_out) - pearson(x, y)) > 0.5
        assert abs(spearman(x_out, y_out) - spearman(x, y)) < 0.2
