"""Tests for cardinality estimation, the cost model, join ordering, and
physical plan construction."""

import pytest

from repro.optimizer import (
    COST_UNIT_NAMES,
    PLANNER_UNITS,
    CardinalityEstimator,
    CostModel,
    Optimizer,
    OptimizerConfig,
    ResourceCounts,
    best_join_order,
)
from repro.plan import (
    HashJoinNode,
    IndexScanNode,
    JoinEdge,
    NestLoopJoinNode,
    OpKind,
    PredicateKind,
    ScanPredicate,
    SeqScanNode,
    SortNode,
)


class TestCardinality:
    def test_range_estimate_close_to_truth(self, tpch_db):
        estimator = CardinalityEstimator(tpch_db)
        predicate = ScanPredicate("o", "o_totalprice", PredicateKind.LE, (225_000.0,))
        estimate = estimator.predicate_selectivity("orders", predicate)
        truth = (tpch_db.table("orders").column("o_totalprice") <= 225_000.0).mean()
        assert estimate == pytest.approx(truth, abs=0.05)

    def test_eq_estimate(self, tpch_db):
        estimator = CardinalityEstimator(tpch_db)
        predicate = ScanPredicate("c", "c_mktsegment", PredicateKind.EQ, ("BUILDING",))
        estimate = estimator.predicate_selectivity("customer", predicate)
        truth = (tpch_db.table("customer").column("c_mktsegment") == "BUILDING").mean()
        assert estimate == pytest.approx(truth, abs=0.05)

    def test_in_sums_eq(self, tpch_db):
        estimator = CardinalityEstimator(tpch_db)
        single = estimator.predicate_selectivity(
            "lineitem", ScanPredicate("l", "l_shipmode", PredicateKind.EQ, ("AIR",))
        )
        double = estimator.predicate_selectivity(
            "lineitem",
            ScanPredicate("l", "l_shipmode", PredicateKind.IN, ("AIR", "RAIL")),
        )
        assert double > single

    def test_conjunction_multiplies(self, tpch_db):
        estimator = CardinalityEstimator(tpch_db)
        p1 = ScanPredicate("l", "l_quantity", PredicateKind.LE, (25.0,))
        p2 = ScanPredicate("l", "l_discount", PredicateKind.LE, (0.05,))
        combined = estimator.scan_selectivity("lineitem", [p1, p2])
        s1 = estimator.predicate_selectivity("lineitem", p1)
        s2 = estimator.predicate_selectivity("lineitem", p2)
        assert combined == pytest.approx(s1 * s2, rel=1e-9)

    def test_join_selectivity_fk(self, tpch_db):
        estimator = CardinalityEstimator(tpch_db)
        edge = JoinEdge("o", "o_orderkey", "l", "l_orderkey")
        selectivity = estimator.join_edge_selectivity(
            edge, {"o": "orders", "l": "lineitem"}
        )
        orders = tpch_db.table("orders").num_rows
        assert selectivity == pytest.approx(1.0 / orders, rel=0.05)

    def test_group_count_capped_by_input(self, tpch_db):
        estimator = CardinalityEstimator(tpch_db)
        assert estimator.group_count([1000, 1000], input_rows=50.0) == 50.0
        assert estimator.group_count([3, 4], input_rows=1000.0) == 12.0
        assert estimator.group_count([], input_rows=10.0) == 1.0


class TestCostModel:
    def test_resource_counts_addition(self):
        total = ResourceCounts(ns=1, nt=2) + ResourceCounts(ns=3, no=4)
        assert total.ns == 4 and total.nt == 2 and total.no == 4

    def test_total_cost_matches_equation_one(self):
        counts = ResourceCounts(ns=10, nr=5, nt=100, ni=20, no=50)
        units = {"cs": 1.0, "cr": 4.0, "ct": 0.01, "ci": 0.005, "co": 0.0025}
        expected = 10 * 1.0 + 5 * 4.0 + 100 * 0.01 + 20 * 0.005 + 50 * 0.0025
        assert counts.total_cost(units) == pytest.approx(expected)

    def test_seq_scan_counts(self, tpch_db):
        model = CostModel(tpch_db)
        node = SeqScanNode(table="orders", alias="o", predicates=[])
        counts = model.operator_counts(node, 0, 0, 15_000)
        stats = tpch_db.table_stats("orders")
        assert counts.nt == stats.num_rows
        assert counts.ns == stats.num_pages
        assert counts.nr == 0

    def test_index_scan_linear_in_output(self, tpch_db):
        model = CostModel(tpch_db)
        node = IndexScanNode(table="orders", alias="o", index_column="o_orderkey")
        node.index_fetch_factor = 1.0
        small = model.operator_counts(node, 0, 0, 100)
        large = model.operator_counts(node, 0, 0, 200)
        assert large.nr > small.nr
        assert large.ni == pytest.approx(2 * small.ni)

    def test_hash_join_linear(self, tpch_db):
        model = CostModel(tpch_db)
        node = HashJoinNode(keys=[("a.x", "b.y")])
        counts = model.operator_counts(node, 1000, 500, 2000)
        assert counts.nt == 1500
        # output cardinality must not affect the join's own counts (C5)
        counts2 = model.operator_counts(node, 1000, 500, 99999)
        assert counts2.nt == counts.nt and counts2.no == counts.no

    def test_nestloop_quadratic(self, tpch_db):
        model = CostModel(tpch_db)
        node = NestLoopJoinNode(keys=[])
        counts = model.operator_counts(node, 100, 50, 0)
        assert counts.no == pytest.approx(100 * 50)
        assert counts.nt == pytest.approx(100 + 100 * 50)

    def test_sort_superlinear(self, tpch_db):
        model = CostModel(tpch_db)
        node = SortNode(keys=[("a.x", False)])
        small = model.operator_counts(node, 1000, 0, 1000)
        large = model.operator_counts(node, 2000, 0, 2000)
        assert large.no > 2 * small.no  # n log n grows faster than n

    def test_plan_cost_positive(self, optimizer, tpch_db):
        planned = optimizer.plan_sql("SELECT * FROM orders WHERE o_totalprice > 100")
        cost = CostModel(tpch_db).plan_cost(planned.root, planned.est_cards)
        assert cost > 0

    def test_cost_unit_names_complete(self):
        assert set(COST_UNIT_NAMES) == set(PLANNER_UNITS)


class TestJoinOrder:
    def edges(self):
        return [
            JoinEdge("a", "x", "b", "x"),
            JoinEdge("b", "y", "c", "y"),
        ]

    def test_chain_avoids_cross_product(self):
        tree = best_join_order(
            {"a": 1000.0, "b": 10.0, "c": 1000.0},
            self.edges(),
            lambda e: 0.001,
        )
        assert set(tree.aliases()) == {"a", "b", "c"}

    def test_single_relation(self):
        tree = best_join_order({"a": 5.0}, [], lambda e: 1.0)
        assert tree.is_leaf and tree.alias == "a"

    def test_smaller_side_becomes_build(self):
        tree = best_join_order(
            {"big": 10_000.0, "tiny": 5.0},
            [JoinEdge("big", "x", "tiny", "x")],
            lambda e: 0.01,
        )
        assert tree.left.alias == "big"
        assert tree.right.alias == "tiny"

    def test_disconnected_graph_cross_joins(self):
        tree = best_join_order({"a": 10.0, "b": 20.0}, [], lambda e: 1.0)
        assert set(tree.aliases()) == {"a", "b"}
        assert tree.edges == ()

    def test_selective_edge_joined_first(self):
        # star: center joins two satellites; the more selective edge first
        edges = [
            JoinEdge("center", "k1", "sat1", "k1"),
            JoinEdge("center", "k2", "sat2", "k2"),
        ]
        selectivities = {("center", "sat1"): 1e-6, ("center", "sat2"): 1e-2}

        def edge_sel(edge):
            return selectivities[(edge.left_alias, edge.right_alias)]

        tree = best_join_order(
            {"center": 10_000.0, "sat1": 1000.0, "sat2": 1000.0}, edges, edge_sel
        )
        # the bottom join should be center x sat1 (cheapest intermediate)
        bottom = tree.left if not tree.left.is_leaf else tree.right
        assert set(bottom.aliases()) == {"center", "sat1"}


class TestOptimizer:
    def test_index_scan_chosen_for_selective_range(self, tpch_db):
        optimizer = Optimizer(tpch_db)
        planned = optimizer.plan_sql(
            "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-02-01'"
        )
        assert planned.root.kind is OpKind.INDEX_SCAN

    def test_seq_scan_for_wide_range(self, tpch_db):
        optimizer = Optimizer(tpch_db)
        planned = optimizer.plan_sql(
            "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1998-12-01'"
        )
        assert planned.root.kind is OpKind.SEQ_SCAN

    def test_index_scans_disabled_by_config(self, tpch_db):
        optimizer = Optimizer(tpch_db, OptimizerConfig(enable_index_scans=False))
        planned = optimizer.plan_sql(
            "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-02-01'"
        )
        assert planned.root.kind is OpKind.SEQ_SCAN

    def test_join_algorithm_choice(self, tpch_db):
        optimizer = Optimizer(tpch_db)
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        assert planned.root.kind is OpKind.HASH_JOIN
        # tiny inner (region, 5 rows) -> nested loop
        planned = optimizer.plan_sql(
            "SELECT * FROM nation, region WHERE n_regionkey = r_regionkey"
        )
        assert planned.root.kind is OpKind.NESTLOOP_JOIN

    def test_aggregate_on_top(self, tpch_db):
        optimizer = Optimizer(tpch_db)
        planned = optimizer.plan_sql(
            "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority"
        )
        assert planned.root.kind is OpKind.AGGREGATE

    def test_est_selectivity_in_unit_range(self, optimizer):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice > 200000"
        )
        for node in planned.root.walk():
            selectivity = planned.est_selectivity(node)
            assert 0.0 <= selectivity <= 1.0 + 1e-9

    def test_leaf_row_product(self, optimizer, tpch_db):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        expected = (
            tpch_db.table("orders").num_rows * tpch_db.table("lineitem").num_rows
        )
        assert planned.leaf_row_product(planned.root) == expected

    def test_est_cards_close_for_fk_join(self, optimizer, tpch_db):
        planned = optimizer.plan_sql(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        lineitem_rows = tpch_db.table("lineitem").num_rows
        assert planned.est_cards[planned.root.op_id] == pytest.approx(
            lineitem_rows, rel=0.1
        )

    def test_five_way_join_plans(self, optimizer):
        planned = optimizer.plan_sql(
            "SELECT * FROM customer, orders, lineitem, supplier, nation "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
            "AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey"
        )
        aliases = set(planned.root.leaf_aliases())
        assert aliases == {"customer", "orders", "lineitem", "supplier", "nation"}

    def test_op_ids_postorder_unique(self, optimizer):
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        ids = [node.op_id for node in planned.root.walk()]
        assert ids == sorted(ids) == list(range(len(ids)))
