"""Cross-cutting pipeline properties: determinism, self-joins, scaling."""

import numpy as np
import pytest

from repro.core import UncertaintyPredictor, Variant
from repro.executor import Executor
from repro.optimizer import Optimizer
from repro.optimizer.cost_model import CostModel, ResourceCounts
from repro.plan import OpKind
from repro.sampling import SampleDatabase, SelectivityEstimator
from repro.workloads import template_by_number


class TestDeterminism:
    SQL = (
        "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
        "AND o_totalprice > 250000"
    )

    def test_planning_deterministic(self, tpch_db):
        a = Optimizer(tpch_db).plan_sql(self.SQL)
        b = Optimizer(tpch_db).plan_sql(self.SQL)
        assert a.root.pretty() == b.root.pretty()
        assert a.est_cards == b.est_cards

    def test_prediction_deterministic(self, tpch_db, calibrated_units):
        planned = Optimizer(tpch_db).plan_sql(self.SQL)
        predictor = UncertaintyPredictor(calibrated_units)
        samples = SampleDatabase(tpch_db, sampling_ratio=0.05, seed=17)
        first = predictor.predict(planned, samples)
        second = predictor.predict(planned, samples)
        assert first.mean == second.mean
        assert first.std == second.std

    def test_different_samples_different_distributions(
        self, tpch_db, calibrated_units
    ):
        """The Section 6.3.2 point: each sample yields its own D_i."""
        planned = Optimizer(tpch_db).plan_sql(self.SQL)
        predictor = UncertaintyPredictor(calibrated_units)
        means = set()
        for seed in range(4):
            samples = SampleDatabase(tpch_db, sampling_ratio=0.03, seed=seed)
            means.add(round(predictor.predict(planned, samples).mean, 9))
        assert len(means) > 1


class TestSelfJoin:
    def test_q7_two_nation_copies_estimated(self, tpch_db, sample_db):
        rng = np.random.default_rng(7)
        sql = template_by_number(7).seljoin(rng)
        planned = Optimizer(tpch_db).plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        root = estimate.resolve(planned.root.op_id)
        aliases = set(root.leaf_aliases)
        assert {"n1", "n2"} <= aliases
        assert 0.0 <= root.mean <= 1.0

    def test_q7_executes(self, tpch_db):
        rng = np.random.default_rng(7)
        sql = template_by_number(7).instantiate(rng)
        planned = Optimizer(tpch_db).plan_sql(sql)
        result = Executor(tpch_db).execute(planned)
        assert result.num_rows >= 0


class TestCostModelContract:
    def test_plan_counts_respects_fetched_override(self, tpch_db):
        optimizer = Optimizer(tpch_db)
        planned = optimizer.plan_sql(
            "SELECT * FROM lineitem WHERE l_shipdate <= DATE '1992-02-15'"
        )
        node = planned.root
        assert node.kind is OpKind.INDEX_SCAN
        model = CostModel(tpch_db)
        cards = {node.op_id: 100.0}
        default = model.plan_counts(node, cards)[node.op_id]
        overridden = model.plan_counts(node, cards, fetched={node.op_id: 500.0})[
            node.op_id
        ]
        assert overridden.ni == pytest.approx(500.0)
        assert overridden.ni != default.ni

    def test_counts_monotone_in_cardinality(self, tpch_db):
        """More input rows never cost less, for every operator family."""
        optimizer = Optimizer(tpch_db)
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
        model = CostModel(tpch_db)
        for node in planned.root.walk():
            if node.is_scan:
                continue
            small = model.operator_counts(node, 100.0, 100.0, 50.0)
            large = model.operator_counts(node, 1000.0, 1000.0, 500.0)
            for unit in ("cs", "cr", "ct", "ci", "co"):
                assert large.as_dict()[unit] >= small.as_dict()[unit]

    def test_resource_counts_immutable(self):
        counts = ResourceCounts(ns=1.0)
        with pytest.raises(Exception):
            counts.ns = 2.0


class TestVarianceScaling:
    def test_sigma_scales_with_database_size(self, calibrated_units):
        """Bigger database, same SR -> bigger absolute time uncertainty."""
        from repro.datagen import TpchConfig, generate_tpch

        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice <= 250000"
        )
        stds = []
        for sf in (0.005, 0.02):
            db = generate_tpch(TpchConfig(scale_factor=sf, seed=3))
            planned = Optimizer(db).plan_sql(sql)
            samples = SampleDatabase(db, sampling_ratio=0.05, seed=4)
            prediction = UncertaintyPredictor(calibrated_units).predict(
                planned, samples
            )
            stds.append(prediction.std)
        assert stds[1] > stds[0]

    def test_variant_hierarchy_over_workload(
        self, tpch_db, sample_db, calibrated_units
    ):
        """All >= each ablated variant for every query of a workload."""
        from repro.workloads import seljoin_workload

        optimizer = Optimizer(tpch_db)
        predictor = UncertaintyPredictor(calibrated_units)
        for sql in seljoin_workload(num_queries=7, seed=23):
            planned = optimizer.plan_sql(sql)
            prepared = predictor.prepare(planned, sample_db)
            full = predictor.predict_prepared(planned, prepared, Variant.ALL)
            for variant in (Variant.NO_VAR_C, Variant.NO_VAR_X, Variant.NO_COV):
                ablated = predictor.predict_prepared(planned, prepared, variant)
                assert ablated.distribution.variance <= (
                    full.distribution.variance + 1e-15
                )
