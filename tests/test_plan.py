"""Tests for predicates, expressions, binding, and physical plan trees."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan import (
    AggregateNode,
    ColumnPairScanPredicate,
    HashJoinNode,
    PredicateKind,
    ScanPredicate,
    SeqScanNode,
    assign_op_ids,
    bind_query,
    compile_scalar,
)
from repro.sql import parse_query
from repro.sql.ast import Arith, ColumnRef, Literal


class TestScanPredicate:
    def test_eq_mask(self):
        predicate = ScanPredicate("t", "a", PredicateKind.EQ, (3,))
        mask = predicate.mask(np.array([1, 3, 3, 4]))
        assert mask.tolist() == [False, True, True, False]

    def test_between_mask(self):
        predicate = ScanPredicate("t", "a", PredicateKind.BETWEEN, (2, 4))
        mask = predicate.mask(np.array([1, 2, 3, 4, 5]))
        assert mask.tolist() == [False, True, True, True, False]

    def test_in_mask(self):
        predicate = ScanPredicate("t", "a", PredicateKind.IN, (1, 5))
        mask = predicate.mask(np.array([1, 2, 5]))
        assert mask.tolist() == [True, False, True]

    def test_prefix_mask(self):
        predicate = ScanPredicate("t", "a", PredicateKind.PREFIX, ("PRO",))
        mask = predicate.mask(np.array(["PROMO", "ECON", "PRO"], dtype="U8"))
        assert mask.tolist() == [True, False, True]

    def test_num_ops(self):
        assert ScanPredicate("t", "a", PredicateKind.EQ, (1,)).num_ops == 1
        assert ScanPredicate("t", "a", PredicateKind.BETWEEN, (1, 2)).num_ops == 2
        assert ScanPredicate("t", "a", PredicateKind.IN, (1, 2, 3)).num_ops == 3

    def test_range_bounds(self):
        assert ScanPredicate("t", "a", PredicateKind.LE, (9,)).range_bounds() == (None, 9)
        assert ScanPredicate("t", "a", PredicateKind.GE, (2,)).range_bounds() == (2, None)
        assert ScanPredicate("t", "a", PredicateKind.EQ, (5,)).range_bounds() == (5, 5)

    def test_is_range(self):
        assert ScanPredicate("t", "a", PredicateKind.LT, (1,)).is_range
        assert not ScanPredicate("t", "a", PredicateKind.IN, (1,)).is_range
        assert not ScanPredicate("t", "a", PredicateKind.PREFIX, ("x",)).is_range

    def test_column_pair_mask(self):
        predicate = ColumnPairScanPredicate("t", "a", PredicateKind.LT, "b")
        mask = predicate.mask(np.array([1, 5]), np.array([2, 2]))
        assert mask.tolist() == [True, False]


class TestScalarExpressions:
    def resolver(self, ref):
        return f"t.{ref.name}"

    def test_column_lookup(self):
        expr = compile_scalar(ColumnRef(name="a"), self.resolver)
        out = expr.evaluate({"t.a": np.array([1.0, 2.0])}, 2)
        assert out.tolist() == [1.0, 2.0]

    def test_arith(self):
        ast = Arith("*", ColumnRef(name="a"), Arith("-", Literal(1, "number"), ColumnRef(name="b")))
        expr = compile_scalar(ast, self.resolver)
        out = expr.evaluate({"t.a": np.array([10.0]), "t.b": np.array([0.25])}, 1)
        assert out.tolist() == [7.5]

    def test_columns_collected(self):
        ast = Arith("+", ColumnRef(name="a"), ColumnRef(name="b"))
        expr = compile_scalar(ast, self.resolver)
        assert set(expr.columns) == {"t.a", "t.b"}

    def test_num_ops(self):
        ast = Arith("+", ColumnRef(name="a"), Arith("*", ColumnRef(name="b"), Literal(2, "number")))
        assert compile_scalar(ast, self.resolver).num_ops == 2

    def test_missing_column_raises(self):
        expr = compile_scalar(ColumnRef(name="a"), self.resolver)
        with pytest.raises(PlanError):
            expr.evaluate({}, 0)


class TestBinder:
    def bind(self, sql, db):
        return bind_query(parse_query(sql), db)

    def test_scan_predicates_routed_to_alias(self, tpch_db):
        bound = self.bind(
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice > 1000 AND l_quantity < 10",
            tpch_db,
        )
        assert len(bound.scan_predicates["orders"]) == 1
        assert len(bound.scan_predicates["lineitem"]) == 1
        assert len(bound.join_edges) == 1

    def test_unqualified_resolution(self, tpch_db):
        bound = self.bind("SELECT * FROM orders WHERE o_totalprice > 5", tpch_db)
        assert bound.scan_predicates["orders"][0].column == "o_totalprice"

    def test_ambiguous_column_rejected(self, tpch_db):
        with pytest.raises(PlanError):
            self.bind("SELECT n_name FROM nation n1, nation n2", tpch_db)

    def test_qualified_disambiguation(self, tpch_db):
        bound = self.bind(
            "SELECT n1.n_name FROM nation n1, nation n2 "
            "WHERE n1.n_nationkey = n2.n_nationkey",
            tpch_db,
        )
        assert bound.join_edges[0].left_alias == "n1"

    def test_unknown_column(self, tpch_db):
        with pytest.raises(PlanError):
            self.bind("SELECT nope FROM orders", tpch_db)

    def test_unknown_alias(self, tpch_db):
        with pytest.raises(PlanError):
            self.bind("SELECT zz.o_orderkey FROM orders", tpch_db)

    def test_same_table_column_pair(self, tpch_db):
        bound = self.bind(
            "SELECT * FROM lineitem WHERE l_commitdate < l_receiptdate", tpch_db
        )
        predicate = bound.scan_predicates["lineitem"][0]
        assert isinstance(predicate, ColumnPairScanPredicate)
        assert predicate.op is PredicateKind.LT

    def test_cross_table_nonequi_is_cross_filter(self, tpch_db):
        bound = self.bind(
            "SELECT * FROM orders, lineitem WHERE o_orderdate < l_shipdate",
            tpch_db,
        )
        assert len(bound.cross_filters) == 1
        assert not bound.join_edges

    def test_aggregates_and_groups(self, tpch_db):
        bound = self.bind(
            "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
            tpch_db,
        )
        assert bound.group_keys == ["orders.o_orderpriority"]
        assert bound.aggregates[0].func == "COUNT"
        assert bound.has_aggregates

    def test_non_grouped_column_rejected(self, tpch_db):
        with pytest.raises(PlanError):
            self.bind("SELECT o_custkey, COUNT(*) FROM orders", tpch_db)

    def test_duplicate_alias_rejected(self, tpch_db):
        with pytest.raises(PlanError):
            self.bind("SELECT * FROM orders o, lineitem o", tpch_db)


class TestPhysicalTree:
    def build_tree(self):
        left = SeqScanNode(table="a", alias="a")
        right = SeqScanNode(table="b", alias="b")
        join = HashJoinNode(keys=[("a.x", "b.y")], children=[left, right])
        agg = AggregateNode(children=[join])
        return assign_op_ids(agg)

    def test_postorder_ids(self):
        root = self.build_tree()
        kinds = [node.kind.value for node in root.walk()]
        assert kinds == ["SeqScan", "SeqScan", "HashJoin", "Aggregate"]
        assert [node.op_id for node in root.walk()] == [0, 1, 2, 3]

    def test_leaf_aliases(self):
        root = self.build_tree()
        assert root.leaf_aliases() == ("a", "b")
        assert root.children[0].leaf_aliases() == ("a", "b")

    def test_is_join_and_scan(self):
        root = self.build_tree()
        nodes = list(root.walk())
        assert nodes[0].is_scan and not nodes[0].is_join
        assert nodes[2].is_join and not nodes[2].is_scan

    def test_right_child_of_unary_raises(self):
        root = self.build_tree()
        with pytest.raises(PlanError):
            _ = root.right  # aggregate has one child

    def test_pretty_contains_labels(self):
        text = self.build_tree().pretty()
        assert "HashJoin" in text and "SeqScan" in text
