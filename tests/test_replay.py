"""Workload replay: determinism, load models, concurrency, bugfix pins.

The contract under test (ISSUE 5 acceptance):

* same seed + mix + arrival model ⇒ the identical request schedule and
  bitwise-identical in-process predictions;
* a closed-loop client count actually bounds in-flight requests — with
  clients ≤ the server's admission cap, a replay sees zero 503s;
* ``Session.stats()`` is safe to call concurrently with traffic (no
  torn ``CacheStats`` reads, no blocking behind batches);
* ``HttpClient`` retries 503 admission refusals behind a seeded,
  jittered, deterministic backoff.
"""

import random
import threading

import numpy as np
import pytest

from repro.api import HttpClient, Session, SessionConfig, build_server
from repro.api.client import ApiError
from repro.caching import ByteBudgetLRU
from repro.datagen import TpchConfig, generate_tpch
from repro.errors import ReproError
from repro.replay import (
    BurstyArrivals,
    ClosedLoop,
    DriftTrajectory,
    FeedbackPoint,
    HttpTarget,
    InProcessTarget,
    MixComponent,
    PoissonArrivals,
    ReplayReport,
    ReplayRunner,
    UniformArrivals,
    WorkloadMix,
    build_schedule,
    parse_arrival,
    parse_mix,
    run_feedback_loop,
)
from repro.replay.report import calibration_under_load

SESSION_CONFIG = SessionConfig(
    scale_factor=0.01,
    db_seed=5,
    calibration_seed=0,
    calibration_repetitions=5,
    sampling_ratio=0.05,
    sampling_seed=1,
)


@pytest.fixture(scope="module")
def database():
    return generate_tpch(TpchConfig(scale_factor=0.01, seed=5))


@pytest.fixture(scope="module")
def session():
    return Session(SESSION_CONFIG)


# ---------------------------------------------------------------------------
# mixes


def test_mix_presets_parse_and_draw(database):
    for name in ("tpch", "micro", "mixed", "multitenant"):
        mix = parse_mix(name)
        drawer = mix.drawer(database, 3)
        sql, component = drawer.draw()
        assert sql.upper().startswith("SELECT")
        assert component in mix.components


def test_mix_spec_parsing():
    mix = parse_mix("tpch=0.7,micro-join=0.3")
    assert [c.kind for c in mix.components] == ["tpch", "micro-join"]
    assert np.isclose(mix.weights().sum(), 1.0)
    single = parse_mix("tpch:6")
    assert single.components[0].kind == "tpch:6"


def test_mix_validation_errors():
    with pytest.raises(ReproError):
        parse_mix("nonsense-mix")
    with pytest.raises(ReproError):
        MixComponent("tpch", weight=0.0)
    with pytest.raises(ReproError):
        MixComponent("micro-scan:3")
    with pytest.raises(ReproError):
        MixComponent("tpch:999")
    with pytest.raises(ReproError):
        MixComponent("tpch", pool_size=0)
    with pytest.raises(ReproError):
        WorkloadMix("empty", ())


def test_pool_size_bounds_distinct_queries(database):
    mix = WorkloadMix("pooled", (MixComponent("tpch", pool_size=3),))
    drawer = mix.drawer(database, 11)
    drawn = {drawer.draw()[0] for _ in range(60)}
    assert 1 <= len(drawn) <= 3


def test_template_component_sticks_to_its_template(database):
    mix = WorkloadMix("only-q6", (MixComponent("tpch:6",),))
    drawer = mix.drawer(database, 0)
    for _ in range(5):
        sql, _ = drawer.draw()
        assert "l_discount BETWEEN" in sql  # Q6's signature predicate


# ---------------------------------------------------------------------------
# arrival processes


def test_arrival_offsets_sorted_bounded_deterministic():
    for process in (
        PoissonArrivals(50.0),
        UniformArrivals(50.0),
        BurstyArrivals(50.0),
    ):
        first = process.offsets(np.random.default_rng(4), 2.0)
        again = process.offsets(np.random.default_rng(4), 2.0)
        assert np.array_equal(first, again)
        assert np.all(np.diff(first) >= 0)
        assert first.size == 0 or (first[0] >= 0 and first[-1] < 2.0)


def test_arrival_rates_are_respected():
    rng = np.random.default_rng(0)
    poisson = PoissonArrivals(100.0).offsets(rng, 10.0)
    assert 700 <= poisson.size <= 1300
    uniform = UniformArrivals(10.0).offsets(np.random.default_rng(0), 2.0)
    assert uniform.size == 20
    bursty = BurstyArrivals(100.0).offsets(np.random.default_rng(1), 10.0)
    assert 700 <= bursty.size <= 1300  # modulation preserves the average


def test_bursty_concentrates_arrivals():
    process = BurstyArrivals(
        80.0, burst_factor=8.0, period_seconds=1.0, on_fraction=0.25
    )
    offsets = process.offsets(np.random.default_rng(2), 8.0)
    in_burst = np.sum((offsets % 1.0) < 0.25)
    # 25% of the time carries well over half the arrivals.
    assert in_burst / offsets.size > 0.5


def test_parse_arrival_forms_and_errors():
    assert isinstance(parse_arrival("poisson:20"), PoissonArrivals)
    assert isinstance(parse_arrival("uniform:5"), UniformArrivals)
    bursty = parse_arrival("bursty:20:6:2:0.4")
    assert (bursty.burst_factor, bursty.period_seconds, bursty.on_fraction) == (
        6.0, 2.0, 0.4,
    )
    for bad in ("poisson", "poisson:x", "trickle:5", "bursty:1:2:3:4:5"):
        with pytest.raises(ReproError):
            parse_arrival(bad)
    with pytest.raises(ReproError):
        PoissonArrivals(0.0)
    with pytest.raises(ReproError):
        BurstyArrivals(10.0, on_fraction=1.5)


# ---------------------------------------------------------------------------
# schedules: the determinism acceptance criterion


def test_same_seed_same_schedule(database):
    mix = parse_mix("mixed")
    arrival = PoissonArrivals(40.0)
    one = build_schedule(mix, database, arrival, seed=9, duration_seconds=1.5)
    two = build_schedule(mix, database, arrival, seed=9, duration_seconds=1.5)
    assert one.requests == two.requests
    assert one.fingerprint() == two.fingerprint()
    other = build_schedule(mix, database, arrival, seed=10, duration_seconds=1.5)
    assert one.fingerprint() != other.fingerprint()


def test_closed_loop_schedule_shape(database):
    load = ClosedLoop(clients=3, requests_per_client=4, think_seconds=0.01)
    schedule = build_schedule(parse_mix("tpch"), database, load, seed=2)
    assert schedule.mode == "closed"
    assert len(schedule) == 12
    assert schedule.think_seconds == 0.01
    for client in range(3):
        assert len(schedule.client_requests(client)) == 4
    # client-major draw order: adding a client must not perturb the
    # queries earlier clients replay
    bigger = build_schedule(
        parse_mix("tpch"), database,
        ClosedLoop(clients=4, requests_per_client=4, think_seconds=0.01),
        seed=2,
    )
    assert bigger.client_requests(0) == schedule.client_requests(0)
    assert bigger.client_requests(2) == schedule.client_requests(2)


def test_multitenant_fanout_rides_the_schedule(database):
    schedule = build_schedule(
        parse_mix("multitenant"), database, UniformArrivals(60.0),
        seed=4, duration_seconds=1.0,
    )
    fanouts = {request.mpls for request in schedule.requests}
    assert (1, 4) in fanouts  # the dashboard tenant's override
    assert None in fanouts    # the ad-hoc tenants defer to defaults


def test_empty_schedule_is_an_error(database):
    with pytest.raises(ReproError):
        build_schedule(
            parse_mix("tpch"), database, PoissonArrivals(0.5),
            seed=1, duration_seconds=0.01,
        )


# ---------------------------------------------------------------------------
# replay runs: bitwise reproducibility + closed-loop bounding


def test_open_loop_inprocess_bitwise_identical(session):
    schedule = build_schedule(
        parse_mix("mixed"), session.database, UniformArrivals(30.0),
        seed=7, duration_seconds=1.0,
    )
    runner = ReplayRunner(InProcessTarget(session), time_scale=0.02)
    first = runner.run(schedule)
    second = runner.run(schedule)
    assert not first.failed and not second.failed
    assert len(first.observations) == len(schedule)
    signature = first.results_signature()
    assert signature == second.results_signature()
    assert signature  # non-empty: the comparison is meaningful


def test_closed_loop_bounds_in_flight_no_503s(session):
    """clients ≤ max_in_flight ⇒ zero over-capacity refusals."""
    server = build_server(session, port=0, max_in_flight=3)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        schedule = build_schedule(
            parse_mix("mixed"), session.database,
            ClosedLoop(clients=3, requests_per_client=5),
            seed=13,
        )
        run = ReplayRunner(HttpTarget(HttpClient(server.url))).run(schedule)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    assert run.error_counts().get("over-capacity", 0) == 0
    assert not run.failed
    assert 0 < run.max_in_flight <= 3
    # and the wire did not perturb a single bit vs an idle re-serve
    by_index = {r.index: r for r in schedule.requests}
    for observation in run.succeeded:
        idle = session.predict(by_index[observation.index].sql)
        assert idle.results == observation.response.results


def test_replay_report_and_calibration(session):
    schedule = build_schedule(
        parse_mix("mixed"), session.database, UniformArrivals(25.0),
        seed=3, duration_seconds=1.0,
    )
    run = ReplayRunner(InProcessTarget(session), time_scale=0.02).run(schedule)
    calibration = calibration_under_load(run, session, confidence=0.9)
    report = ReplayReport.from_run(run, calibration=calibration)
    assert report.requests_total == len(schedule)
    assert report.requests_failed == 0
    assert report.throughput_qps > 0
    assert report.latency.p50 <= report.latency.p95 <= report.latency.p99
    assert report.cache_trajectory[-1][0] == len(schedule)
    assert calibration.matches_idle
    assert calibration.samples == len(schedule)
    assert 0.0 <= calibration.coverage_under_load <= 1.0
    assert calibration.coverage_under_load == calibration.coverage_idle
    rendered = report.render()
    assert "bitwise equal to idle" in rendered
    assert report.to_dict()["schedule_fingerprint"] == schedule.fingerprint()


def test_runner_isolates_bad_queries(session):
    schedule = build_schedule(
        parse_mix("tpch"), session.database, UniformArrivals(5.0),
        seed=1, duration_seconds=1.0,
    )
    broken = schedule.requests[0]
    poisoned = schedule.requests[1:] + (
        type(broken)(
            index=broken.index,
            at_seconds=broken.at_seconds,
            client=broken.client,
            sql="SELEC nope",
        ),
    )
    patched = type(schedule)(
        mode=schedule.mode,
        requests=poisoned,
        clients=schedule.clients,
        duration_seconds=schedule.duration_seconds,
        seed=schedule.seed,
        mix_description=schedule.mix_description,
        load_description=schedule.load_description,
    )
    run = ReplayRunner(InProcessTarget(session), time_scale=0.01).run(patched)
    assert len(run.failed) == 1
    assert run.error_counts() == {"sql-parse": 1}
    assert len(run.succeeded) == len(schedule) - 1


# ---------------------------------------------------------------------------
# bugfix pins: stats under traffic, 503 retry


def test_session_stats_safe_and_nonblocking_under_traffic(session):
    """Concurrent stats() probes: no exception, no torn/regressing counters."""
    queries = [
        request.sql
        for request in build_schedule(
            parse_mix("tpch"), session.database, UniformArrivals(30.0),
            seed=21, duration_seconds=1.0,
        ).requests
    ]
    stop = threading.Event()
    errors: list[Exception] = []

    def traffic():
        try:
            while not stop.is_set():
                session.predict_batch(queries[:10])
        except Exception as error:  # noqa: BLE001 — surfaced in assertions
            errors.append(error)

    thread = threading.Thread(target=traffic, daemon=True)
    thread.start()
    try:
        last_lookups = -1
        last_served = -1
        for _ in range(300):
            report = session.stats()
            lookups = report.prepared_cache.lookups
            assert lookups >= last_lookups
            assert report.stats.queries_served >= last_served
            assert report.sampling_bytes_used >= 0
            rate = report.prepared_cache.hit_rate
            assert rate is None or 0.0 <= rate <= 1.0
            last_lookups = lookups
            last_served = report.stats.queries_served
    finally:
        stop.set()
        thread.join(timeout=10)
    assert not errors


def test_byte_budget_lru_stats_consistent_under_threads():
    cache = ByteBudgetLRU(max_bytes=1024)
    per_thread = 500

    def worker(seed: int):
        rng = random.Random(seed)
        for i in range(per_thread):
            key = rng.randrange(32)
            if rng.random() < 0.5:
                cache.get(key)
            else:
                cache.put(key, i, nbytes=rng.choice((64, 128, 2048)))

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats, entries, bytes_used = cache.snapshot()
    assert stats.lookups == stats.hits + stats.misses
    assert 0 <= bytes_used <= 1024
    assert entries == len(cache)


def test_http_client_retries_503_with_seeded_backoff(monkeypatch):
    client = HttpClient(
        "http://127.0.0.1:1", retries_503=3, backoff_seconds=0.05,
        backoff_seed=42,
    )
    attempts = []

    def flaky_exchange(method, path, payload):
        attempts.append(path)
        if len(attempts) < 3:
            raise ApiError(503, "over-capacity", "at capacity")
        return {"ok": True}

    delays = []
    monkeypatch.setattr(client, "_exchange", flaky_exchange)
    monkeypatch.setattr(
        "repro.api.client.time.sleep", lambda seconds: delays.append(seconds)
    )
    assert client.request_json("GET", "/v1/healthz") == {"ok": True}
    assert len(attempts) == 3
    assert client.retries_performed == 2
    # the jitter is drawn from random.Random(backoff_seed): recompute it
    expected_rng = random.Random(42)
    expected = [
        0.05 * (2.0 ** attempt) * (0.5 + 0.5 * expected_rng.random())
        for attempt in range(2)
    ]
    assert delays == expected
    assert all(0.025 <= d <= 0.2 for d in delays)


def test_http_client_retry_budget_exhausts(monkeypatch):
    client = HttpClient("http://127.0.0.1:1", retries_503=2)

    def always_full(method, path, payload):
        raise ApiError(503, "over-capacity", "at capacity")

    monkeypatch.setattr(client, "_exchange", always_full)
    monkeypatch.setattr("repro.api.client.time.sleep", lambda seconds: None)
    with pytest.raises(ApiError) as info:
        client.request_json("POST", "/v1/predict", {})
    assert info.value.code == "over-capacity"
    assert client.retries_performed == 2


def test_http_client_does_not_retry_other_errors(monkeypatch):
    client = HttpClient("http://127.0.0.1:1", retries_503=5)
    attempts = []

    def parse_error(method, path, payload):
        attempts.append(1)
        raise ApiError(400, "sql-parse", "bad sql")

    monkeypatch.setattr(client, "_exchange", parse_error)
    with pytest.raises(ApiError):
        client.request_json("POST", "/v1/predict", {})
    assert len(attempts) == 1
    assert client.retries_performed == 0


# ---------------------------------------------------------------------------
# the online feedback loop (ISSUE 8): trajectory math + closed loop


def _point(index, online, static, shifted=False, drift=False):
    return FeedbackPoint(
        index=index,
        sql="SELECT 1",
        actual_seconds=1.0,
        shifted=shifted,
        online_covered=online,
        static_covered=static,
        drift_detected=drift,
        scale=None,
    )


class TestDriftTrajectory:
    def test_coverage_slices_and_skips_none(self):
        trajectory = DriftTrajectory(
            confidence=0.9,
            shift_index=2,
            shift_factor=3.0,
            points=(
                _point(0, True, True),
                _point(1, None, False),
                _point(2, False, False, shifted=True),
                _point(3, True, False, shifted=True),
            ),
            drifts_detected=1,
        )
        assert trajectory.coverage() == pytest.approx(2 / 3)
        assert trajectory.coverage(end=2) == pytest.approx(1.0)
        assert trajectory.post_shift_coverage() == pytest.approx(0.5)
        assert trajectory.post_shift_coverage(static=True) == 0.0
        assert trajectory.coverage(start=4) is None
        summary = trajectory.summary()
        assert summary["points"] == 4
        assert summary["drifts_detected"] == 1
        assert "feedback loop" in trajectory.render()

    def test_recovery_counts_rolling_window(self):
        # 3 misses then 10 hits after the shift: with window=4 and
        # target 0.75 the rolling mean first clears at the 6th
        # post-shift observation ([miss, hit, hit, hit] = 0.75); full
        # coverage needs one more hit to flush the last miss out.
        points = [_point(i, True, True) for i in range(2)]
        flags = [False, False, False] + [True] * 10
        points += [
            _point(2 + i, flag, False, shifted=True)
            for i, flag in enumerate(flags)
        ]
        trajectory = DriftTrajectory(
            confidence=0.9,
            shift_index=2,
            shift_factor=3.0,
            points=tuple(points),
            drifts_detected=1,
        )
        assert trajectory.recovery_observations(window=4, target=0.75) == 6
        assert trajectory.recovery_observations(window=4, target=1.0) == 7
        assert trajectory.recovery_observations(window=14, target=1.0) is None

    def test_no_shift_means_no_recovery_number(self):
        trajectory = DriftTrajectory(
            confidence=0.9,
            shift_index=None,
            shift_factor=1.0,
            points=(_point(0, True, True),),
            drifts_detected=0,
        )
        assert trajectory.recovery_observations() is None
        assert "no shift injected" in trajectory.render()

    def test_loop_validation_rejects_bad_knobs(self):
        with pytest.raises(ReproError):
            run_feedback_loop(None, None, None, confidence=1.5)
        with pytest.raises(ReproError):
            run_feedback_loop(None, None, None, shift_at=1.0)
        with pytest.raises(ReproError):
            run_feedback_loop(None, None, None, shift_factor=0.0)


def test_feedback_loop_recovers_from_injected_shift():
    """End-to-end ISSUE 8 acceptance, sized for tier-1.

    Same constants as the ``drift_recovery`` bench: the online arm must
    detect the 3x shift, re-form coverage, and beat the static mirror.
    """
    config = SessionConfig(
        scale_factor=0.01,
        db_seed=11,
        calibration_seed=0,
        calibration_repetitions=6,
        sampling_ratio=0.05,
        sampling_seed=1,
        feedback_window=64,
        feedback_min_observations=12,
        feedback_fast_window=12,
    )
    online = Session(config)
    mirror = Session(config)
    schedule = build_schedule(
        parse_mix("mixed"),
        online.database,
        ClosedLoop(clients=1, requests_per_client=80),
        seed=37,
    )
    trajectory = run_feedback_loop(
        schedule,
        InProcessTarget(online),
        mirror,
        confidence=0.9,
        shift_at=0.4,
        shift_factor=3.0,
    )
    assert len(trajectory.points) == 80
    assert trajectory.shift_index == 32
    assert trajectory.drifts_detected >= 1
    post_online = trajectory.post_shift_coverage()
    post_static = trajectory.post_shift_coverage(static=True)
    assert post_online >= 0.5
    assert post_static <= 0.3
    recovery = trajectory.recovery_observations(window=15, target=0.85)
    assert recovery is not None and recovery <= 40
    # The observations all landed on the loop's tenant, and the ack
    # trail is visible in the session's stats snapshot.
    feedback = online.stats().feedback
    assert feedback.observations == 80
    assert feedback.drifts_detected == trajectory.drifts_detected
