"""Smoke tests for the run_all report driver and the CLI bench path."""

import io

import pytest

from repro.datagen import TpchConfig, generate_tpch
from repro.experiments import ExperimentLab
from repro.experiments.run_all import (
    section_figure3,
    section_figure9,
    section_table4,
)

# Full-experiment report sections are the slow tier: deselected from
# tier-1 runs by pytest.ini (run explicitly with `pytest -m slow`).
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def mini_lab():
    database = generate_tpch(TpchConfig(scale_factor=0.005, seed=31))
    return ExperimentLab(
        databases={"uniform-small": database},
        seed=0,
        query_counts={"MICRO": 6, "SELJOIN": 4, "TPCH": 4},
        calibration_repetitions=3,
    )


class TestReportSections:
    def test_table4_section(self, mini_lab):
        out = io.StringIO()
        section_table4(mini_lab, out)
        text = out.getvalue()
        assert "Table 4" in text
        assert "uniform-small" in text
        assert text.count("|") > 20  # a rendered grid

    def test_figure3_section(self, mini_lab):
        out = io.StringIO()
        section_figure3(mini_lab, out)
        text = out.getvalue()
        assert "full population" in text
        assert "largest-sigma query removed" in text

    def test_figure9_section(self, mini_lab):
        out = io.StringIO()
        section_figure9(mini_lab, out)
        text = out.getvalue()
        assert "overhead" in text
        assert "MICRO" in text and "TPCH" in text
