"""Tests for sample tables and the Algorithm-1 selectivity estimator."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import SampleDatabase, SelectivityEstimator
from repro.sampling.gee import gee_distinct_estimate, gee_selectivity


class TestSampleDatabase:
    def test_sample_sizes(self, tpch_db, sample_db):
        for name in tpch_db.table_names:
            expected = max(2, int(np.ceil(tpch_db.table(name).num_rows * 0.1)))
            assert sample_db.sample_size(name) == min(
                expected, tpch_db.table(name).num_rows
            )

    def test_indices_within_bounds_and_unique(self, tpch_db, sample_db):
        for name in tpch_db.table_names:
            indices = sample_db.sample_indices(name)
            assert indices.min() >= 0
            assert indices.max() < tpch_db.table(name).num_rows
            assert len(np.unique(indices)) == len(indices)

    def test_copies_differ(self, tpch_db, sample_db):
        a = sample_db.sample_indices("lineitem", 0)
        b = sample_db.sample_indices("lineitem", 1)
        assert not np.array_equal(a, b)

    def test_copy_assignment_for_self_join(self, sample_db):
        assignment = sample_db.assign_copies({"n1": "nation", "n2": "nation"})
        assert {assignment["n1"], assignment["n2"]} == {0, 1}

    def test_too_many_occurrences_rejected(self, sample_db):
        with pytest.raises(SamplingError):
            sample_db.assign_copies({"a": "nation", "b": "nation", "c": "nation"})

    def test_invalid_ratio(self, tpch_db):
        with pytest.raises(SamplingError):
            SampleDatabase(tpch_db, sampling_ratio=0.0)
        with pytest.raises(SamplingError):
            SampleDatabase(tpch_db, sampling_ratio=1.5)

    def test_sample_pages_positive(self, sample_db):
        assert sample_db.sample_pages("lineitem") >= 1


class TestScanEstimates:
    def estimate(self, optimizer, sample_db, sql):
        planned = optimizer.plan_sql(sql)
        return planned, SelectivityEstimator(sample_db, planned).estimate()

    def test_scan_estimate_close_to_truth(self, tpch_db, optimizer, sample_db):
        planned, estimate = self.estimate(
            optimizer, sample_db, "SELECT * FROM orders WHERE o_totalprice <= 225000"
        )
        truth = float(
            (tpch_db.table("orders").column("o_totalprice") <= 225000).mean()
        )
        node = estimate.per_node[planned.root.op_id]
        assert node.mean == pytest.approx(truth, abs=0.05)
        assert node.source == "sample"

    def test_scan_variance_is_bernoulli(self, optimizer, sample_db):
        planned, estimate = self.estimate(
            optimizer, sample_db, "SELECT * FROM orders WHERE o_totalprice <= 225000"
        )
        node = estimate.per_node[planned.root.op_id]
        n = node.sample_sizes["orders"]
        assert node.variance == pytest.approx(
            node.mean * (1 - node.mean) / n, rel=1e-9
        )

    def test_more_samples_smaller_variance(self, tpch_db, optimizer):
        sql = "SELECT * FROM orders WHERE o_totalprice <= 225000"
        small = SampleDatabase(tpch_db, sampling_ratio=0.01, seed=1)
        large = SampleDatabase(tpch_db, sampling_ratio=0.2, seed=1)
        planned = optimizer.plan_sql(sql)
        var_small = SelectivityEstimator(small, planned).estimate().per_node[
            planned.root.op_id
        ].variance
        var_large = SelectivityEstimator(large, planned).estimate().per_node[
            planned.root.op_id
        ].variance
        assert var_large < var_small

    def test_estimator_consistency(self, tpch_db, optimizer):
        """Strong consistency: error shrinks as the sampling ratio grows."""
        sql = "SELECT * FROM lineitem WHERE l_quantity <= 25"
        truth = float((tpch_db.table("lineitem").column("l_quantity") <= 25).mean())
        planned = optimizer.plan_sql(sql)
        errors = []
        for ratio in (0.01, 0.3):
            errs = []
            for seed in range(5):
                samples = SampleDatabase(tpch_db, sampling_ratio=ratio, seed=seed)
                estimate = SelectivityEstimator(samples, planned).estimate()
                errs.append(abs(estimate.per_node[planned.root.op_id].mean - truth))
            errors.append(np.mean(errs))
        assert errors[1] < errors[0]


class TestJoinEstimates:
    def test_join_estimate_close_to_truth(self, tpch_db, optimizer, sample_db, executor):
        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice <= 225000"
        )
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        result = executor.execute(planned)
        node = estimate.resolve(planned.root.op_id)
        truth = result.cardinalities[planned.root.op_id] / planned.leaf_row_product(
            planned.root
        )
        # FK-join sample estimates are noisy; demand the right magnitude.
        assert node.mean == pytest.approx(truth, rel=0.6)

    def test_join_variance_components(self, optimizer, sample_db):
        sql = "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        node = estimate.resolve(planned.root.op_id)
        assert set(node.var_components) == {"orders", "lineitem"}
        assert all(v >= 0 for v in node.var_components.values())
        assert node.variance == pytest.approx(
            sum(node.var_components.values()), rel=1e-9
        )

    def test_restricted_variance_monotone(self, optimizer, sample_db):
        """S^2(m, n) grows with the shared-relation set (Lemma 12)."""
        sql = (
            "SELECT * FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
        )
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        node = estimate.resolve(planned.root.op_id)
        single = node.restricted_variance(["lineitem"])
        double = node.restricted_variance(["lineitem", "orders"])
        triple = node.restricted_variance(["lineitem", "orders", "customer"])
        assert single <= double <= triple
        assert triple == pytest.approx(node.variance, rel=1e-9)

    def test_empty_sample_join_falls_back(self, tpch_db, optimizer):
        # An impossible predicate empties the sample result.
        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice < 0"
        )
        samples = SampleDatabase(tpch_db, sampling_ratio=0.02, seed=3)
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(samples, planned).estimate()
        node = estimate.resolve(planned.root.op_id)
        assert node.variance >= 0
        assert 0 <= node.mean <= 1


class TestAggregateHandling:
    def test_aggregate_uses_optimizer_estimate(self, optimizer, sample_db):
        sql = "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        root = estimate.per_node[planned.root.op_id]
        assert root.source == "optimizer"
        assert root.variance == 0.0

    def test_gee_source_when_enabled(self, optimizer, sample_db):
        sql = (
            "SELECT o_orderpriority, COUNT(*) FROM orders "
            "GROUP BY o_orderpriority"
        )
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned, use_gee=True).estimate()
        root = estimate.per_node[planned.root.op_id]
        assert root.source == "gee"
        assert root.mean > 0

    def test_sort_aliases_child_variable(self, optimizer, sample_db):
        sql = (
            "SELECT * FROM orders WHERE o_totalprice > 300000 "
            "ORDER BY o_totalprice"
        )
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        root = estimate.per_node[planned.root.op_id]
        assert root.source == "alias"
        resolved = estimate.resolve(planned.root.op_id)
        assert resolved.source == "sample"

    def test_sample_run_counts_recorded(self, optimizer, sample_db):
        sql = "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        assert len(estimate.sample_run_counts) >= 3
        total = sum(c.nt for c in estimate.sample_run_counts.values())
        assert total > 0


class TestGee:
    def test_exact_when_fully_sampled(self):
        keys = [np.array([1, 1, 2, 3, 3, 3])]
        assert gee_distinct_estimate(keys, scale_up=1.0) == 3.0

    def test_scales_singletons(self):
        keys = [np.array([1, 2, 3, 4])]  # all singletons
        assert gee_distinct_estimate(keys, scale_up=4.0) == pytest.approx(8.0)

    def test_empty_input(self):
        assert gee_distinct_estimate([np.array([], dtype=np.int64)], 2.0) == 0.0

    def test_selectivity_bounded(self):
        keys = [np.array([1, 2, 2, 3])]
        mean, variance = gee_selectivity(keys, scale_up=100.0, denominator=10.0)
        assert 0 < mean <= 1.0
        assert variance >= 0
