"""The shared sub-plan sampling engine: cache primitives, canonical
signatures, estimator/LEC/service integration, and the satellite
regressions (empty intermediates, signature collisions, sample-size
fallback)."""

import math

import pytest

from repro.caching import ByteBudgetLRU, CacheStats
from repro.core import LeastExpectedCostChooser, UncertaintyPredictor
from repro.plan import (
    HashJoinNode,
    IndexScanNode,
    MergeJoinNode,
    PredicateKind,
    ScanPredicate,
    SeqScanNode,
    SortNode,
    assign_op_ids,
)
from repro.sampling import SamplingEngine, subplan_signature
from repro.sampling.estimator import NodeSelectivity, SelectivityEstimator
from repro.sampling.sample_db import MIN_SAMPLE_ROWS
from repro.service import PredictionService


# ---------------------------------------------------------------------------
# ByteBudgetLRU
# ---------------------------------------------------------------------------


class TestByteBudgetLRU:
    def test_evicts_by_bytes_not_count(self):
        cache = ByteBudgetLRU(max_bytes=100)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        assert cache.get("a") == "A"  # refreshes "a"
        cache.put("c", "C", 40)  # 120 bytes: evicts LRU "b"
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.stats.evictions == 1
        assert cache.bytes_used == 80

    def test_oversized_entry_rejected(self):
        cache = ByteBudgetLRU(max_bytes=100)
        cache.put("small", "s", 10)
        assert not cache.put("huge", "h", 101)
        assert cache.get("huge") is None
        assert cache.get("small") == "s"  # nothing was evicted for it
        assert cache.stats.oversized == 1

    def test_replacing_key_updates_bytes(self):
        cache = ByteBudgetLRU(max_bytes=100)
        cache.put("a", "A", 60)
        cache.put("a", "A2", 30)
        assert cache.bytes_used == 30
        assert cache.get("a") == "A2"

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            ByteBudgetLRU(max_bytes=0)

    def test_clear(self):
        cache = ByteBudgetLRU(max_bytes=100)
        cache.put("a", "A", 60)
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0


class TestCacheStats:
    def test_no_lookups_has_no_rate(self):
        stats = CacheStats()
        assert stats.hit_rate is None
        assert stats.describe() == "no lookups"

    def test_rate_after_lookups(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.describe() == "75% (3/4)"

    def test_shared_between_both_cache_layers(self):
        # One stats dataclass for PreparedCache and the sampling engine.
        from repro.service import PreparedCache

        assert isinstance(PreparedCache(maxsize=2).stats, CacheStats)
        assert isinstance(SamplingEngine().stats, CacheStats)


# ---------------------------------------------------------------------------
# Canonical sub-plan signatures
# ---------------------------------------------------------------------------


def _scan(alias, table="orders", predicates=()):
    return SeqScanNode(table=table, alias=alias, predicates=list(predicates))


class TestSubplanSignature:
    def test_invariant_to_op_ids(self):
        a = assign_op_ids(
            HashJoinNode(keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")])
        )
        b = HashJoinNode(keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")])
        for position, node in enumerate(b.walk()):
            node.op_id = position + 40  # wildly different numbering
        assert subplan_signature(a, {}) == subplan_signature(b, {})

    def test_invariant_to_join_input_order(self):
        forward = HashJoinNode(
            keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")]
        )
        swapped = HashJoinNode(
            keys=[("b.k", "a.k")], children=[_scan("b"), _scan("a")]
        )
        assert subplan_signature(forward, {}) == subplan_signature(swapped, {})

    def test_invariant_to_join_algorithm(self):
        hash_join = HashJoinNode(
            keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")]
        )
        merge_join = MergeJoinNode(
            keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")]
        )
        assert subplan_signature(hash_join, {}) == subplan_signature(merge_join, {})

    def test_invariant_to_scan_access_path(self):
        predicate = ScanPredicate("a", "o_totalprice", PredicateKind.GT, (10.0,))
        seq = SeqScanNode(table="orders", alias="a", predicates=[predicate])
        index = IndexScanNode(
            table="orders",
            alias="a",
            index_column="o_totalprice",
            index_predicate=predicate,
            predicates=[],
        )
        assert subplan_signature(seq, {}) == subplan_signature(index, {})

    def test_sort_is_transparent(self):
        join = HashJoinNode(
            keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")]
        )
        sorted_join = SortNode(
            keys=[("a.k", False)],
            children=[
                HashJoinNode(
                    keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")]
                )
            ],
        )
        assert subplan_signature(join, {}) == subplan_signature(sorted_join, {})

    def test_different_keys_differ(self):
        one = HashJoinNode(keys=[("a.k", "b.k")], children=[_scan("a"), _scan("b")])
        other = HashJoinNode(
            keys=[("a.j", "b.j")], children=[_scan("a"), _scan("b")]
        )
        assert subplan_signature(one, {}) != subplan_signature(other, {})

    def test_different_copies_differ(self):
        scan = _scan("a")
        assert subplan_signature(scan, {"a": 0}) != subplan_signature(scan, {"a": 1})

    def test_different_constants_differ(self):
        low = _scan(
            "a",
            predicates=[ScanPredicate("a", "o_totalprice", PredicateKind.GT, (1.0,))],
        )
        high = _scan(
            "a",
            predicates=[ScanPredicate("a", "o_totalprice", PredicateKind.GT, (2.0,))],
        )
        assert subplan_signature(low, {}) != subplan_signature(high, {})


# ---------------------------------------------------------------------------
# Estimator integration
# ---------------------------------------------------------------------------

SQL_JOIN = (
    "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
    "AND o_totalprice > 150000"
)
SQL_AGG = (
    "SELECT l_returnflag, SUM(l_quantity) AS s FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey GROUP BY l_returnflag"
)


def _assert_estimates_identical(reference, served):
    assert reference.per_node.keys() == served.per_node.keys()
    for op_id, ref in reference.per_node.items():
        hot = served.per_node[op_id]
        assert ref.mean == hot.mean
        assert ref.variance == hot.variance
        assert ref.var_components == hot.var_components
        assert ref.source == hot.source
        assert ref.alias_of == hot.alias_of
    assert reference.sample_run_counts == served.sample_run_counts


class TestEstimatorWithEngine:
    @pytest.mark.parametrize("sql", [SQL_JOIN, SQL_AGG])
    def test_cached_estimates_bitwise_identical(self, optimizer, sample_db, sql):
        planned = optimizer.plan_sql(sql)
        reference = SelectivityEstimator(sample_db, planned).estimate()
        engine = SamplingEngine()
        SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        served = SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        assert engine.stats.hits > 0
        _assert_estimates_identical(reference, served)

    def test_second_pass_hits_every_memoizable_node(self, optimizer, sample_db):
        planned = optimizer.plan_sql(SQL_JOIN)
        engine = SamplingEngine()
        SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        stored = len(engine)
        before = engine.stats.misses
        SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        assert engine.stats.misses == before  # no new misses
        assert len(engine) == stored

    def test_engines_keyed_by_sample_fingerprint(
        self, tpch_db, optimizer, sample_db, small_sample_db
    ):
        planned = optimizer.plan_sql(SQL_JOIN)
        engine = SamplingEngine()
        big = SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        small = SelectivityEstimator(
            small_sample_db, planned, engine=engine
        ).estimate()
        # Different sample sets must not share entries.
        root = planned.root.op_id
        assert big.per_node[root].sample_sizes != small.per_node[root].sample_sizes
        reference = SelectivityEstimator(small_sample_db, planned).estimate()
        _assert_estimates_identical(reference, small)

    def test_engine_is_always_truthy(self):
        assert bool(SamplingEngine())  # even when empty (len() == 0)


class TestLecEngineSharing:
    def test_candidates_share_sampling_work(self, tpch_db, sample_db, calibrated_units):
        chooser = LeastExpectedCostChooser(tpch_db, calibrated_units)
        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_orderdate <= DATE '1994-01-01'"
        )
        candidates = chooser.candidates(sql, sample_db)
        assert candidates
        # The candidate configs share at least their leaf scans.
        assert chooser.engine.stats.hits > 0

    def test_engine_does_not_change_the_choice(
        self, tpch_db, sample_db, calibrated_units
    ):
        sql = (
            "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
            "AND o_totalprice > 200000"
        )
        with_engine = LeastExpectedCostChooser(tpch_db, calibrated_units)
        without = LeastExpectedCostChooser(tpch_db, calibrated_units)
        without._engine = None
        a = with_engine.candidates(sql, sample_db)
        b = without.candidates(sql, sample_db)
        assert [c.label for c in a] == [c.label for c in b]
        for x, y in zip(a, b):
            assert x.expected_cost == y.expected_cost
            assert x.cost_std == y.cost_std

    def test_shared_engine_across_choosers(self, tpch_db, sample_db, calibrated_units):
        engine = SamplingEngine()
        sql = "SELECT * FROM orders WHERE o_totalprice > 200000"
        LeastExpectedCostChooser(
            tpch_db, calibrated_units, engine=engine
        ).candidates(sql, sample_db)
        misses = engine.stats.misses
        LeastExpectedCostChooser(
            tpch_db, calibrated_units, engine=engine
        ).candidates(sql, sample_db)
        assert engine.stats.misses == misses  # second chooser fully served


class TestServiceEngine:
    BATCH = [
        "SELECT l_returnflag, SUM(l_quantity) AS s FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey GROUP BY l_returnflag",
        "SELECT l_shipmode, COUNT(*) AS n FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey GROUP BY l_shipmode",
    ]

    def test_distinct_metrics_share_subplans(self, tpch_db, calibrated_units):
        service = PredictionService(tpch_db, calibrated_units, sampling_ratio=0.05)
        batch = service.predict_batch(self.BATCH)
        assert len(batch) == 2
        # Distinct plans: no prepared-cache hit, but the join below the
        # aggregates is sampled once.
        assert batch.stats.prepare_cache_hits == 0
        assert service.sampling_engine.stats.hits > 0

    def test_engine_off_matches_engine_on(self, tpch_db, calibrated_units):
        on = PredictionService(tpch_db, calibrated_units, sampling_ratio=0.05)
        off = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, sampling_engine_bytes=0
        )
        assert off.sampling_engine is None
        for sql in self.BATCH:
            a = on.predict_query(sql).result()
            b = off.predict_query(sql).result()
            assert a.mean == b.mean
            assert a.std == b.std

    def test_report_exposes_both_cache_layers(self, tpch_db, calibrated_units):
        service = PredictionService(tpch_db, calibrated_units, sampling_ratio=0.05)
        service.predict_batch(self.BATCH + self.BATCH)
        report = service.report()
        assert report.stats.queries_served == 4
        assert report.prepared_cache.hits == 2  # the repeated pair
        assert report.sampling_entries == len(service.sampling_engine)
        assert report.sampling_bytes_used > 0
        text = report.render()
        assert "prepared cache" in text and "sampling engine" in text

    def test_report_with_engine_disabled(self, tpch_db, calibrated_units):
        service = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, sampling_engine_bytes=0
        )
        service.predict_query(self.BATCH[0])
        report = service.report()
        assert report.sampling_entries == 0
        assert report.sampling_cache.hit_rate is None
        assert "no lookups" in report.render()


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


class TestEmptyIntermediates:
    """A predicate that eliminates every sample tuple must not poison the
    variance math (NaN / negative values from the n_k - 1 denominators or
    the Q_{k,j} counters)."""

    EMPTY_SCAN = "SELECT * FROM lineitem WHERE l_quantity < -5"
    EMPTY_JOIN = (
        "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey "
        "AND o_totalprice < -1"
    )

    @pytest.mark.parametrize("sql", [EMPTY_SCAN, EMPTY_JOIN])
    def test_estimates_stay_finite(self, optimizer, sample_db, sql):
        planned = optimizer.plan_sql(sql)
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        for selectivity in estimate.per_node.values():
            if selectivity.source == "alias":
                continue
            assert math.isfinite(selectivity.mean)
            assert math.isfinite(selectivity.variance)
            assert selectivity.variance >= 0.0
            for component in selectivity.var_components.values():
                assert math.isfinite(component) and component >= 0.0

    @pytest.mark.parametrize("sql", [EMPTY_SCAN, EMPTY_JOIN])
    def test_prediction_stays_finite(self, optimizer, sample_db, calibrated_units, sql):
        planned = optimizer.plan_sql(sql)
        prediction = UncertaintyPredictor(calibrated_units).predict(
            planned, sample_db
        )
        assert math.isfinite(prediction.mean) and prediction.mean >= 0.0
        assert math.isfinite(prediction.std) and prediction.std >= 0.0

    def test_non_finite_optimizer_estimate_is_guarded(
        self, optimizer, sample_db, monkeypatch
    ):
        # Both fallback paths (empty intermediate, aggregate) clamp the
        # optimizer's estimate; min(nan, 1.0) is nan and used to leak
        # through the aggregate path.
        planned = optimizer.plan_sql(
            "SELECT COUNT(*) AS n FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey GROUP BY o_orderpriority"
        )
        monkeypatch.setattr(
            planned, "est_selectivity", lambda node: float("nan")
        )
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        for selectivity in estimate.per_node.values():
            if selectivity.source == "alias":
                continue
            assert math.isfinite(selectivity.mean)
            assert 0.0 <= selectivity.mean <= 1.0

    def test_empty_results_are_not_memoized(self, optimizer, sample_db):
        # The empty fallback leans on the enclosing plan's optimizer
        # estimates, so sharing it across plans would be wrong.
        planned = optimizer.plan_sql(self.EMPTY_SCAN)
        engine = SamplingEngine()
        first = SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        served = SelectivityEstimator(sample_db, planned, engine=engine).estimate()
        root = planned.root.op_id
        assert first.per_node[root].mean == served.per_node[root].mean
        _assert_estimates_identical(first, served)


class TestMinSampleSizeFallback:
    def test_sample_free_estimate_reports_documented_floor(self):
        selectivity = NodeSelectivity(
            op_id=0,
            mean=0.5,
            variance=0.0,
            var_components={},
            leaf_aliases=(),
            sample_sizes={},
            source="optimizer",
        )
        assert selectivity.min_sample_size() == MIN_SAMPLE_ROWS

    def test_alias_nodes_hit_the_fallback(self, optimizer, sample_db):
        # ORDER BY produces a Sort node whose selectivity is an alias
        # pass-through with no sample sizes of its own.
        planned = optimizer.plan_sql(
            "SELECT * FROM orders WHERE o_totalprice > 100000 "
            "ORDER BY o_totalprice"
        )
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        aliases = [
            s for s in estimate.per_node.values() if s.source == "alias"
        ]
        assert aliases, "expected a Sort alias node in the plan"
        for selectivity in aliases:
            assert selectivity.min_sample_size() == MIN_SAMPLE_ROWS

    def test_sampled_estimate_ignores_the_floor(self, optimizer, sample_db):
        planned = optimizer.plan_sql("SELECT * FROM orders")
        estimate = SelectivityEstimator(sample_db, planned).estimate()
        root = estimate.per_node[planned.root.op_id]
        assert root.min_sample_size() == min(root.sample_sizes.values())
        assert root.min_sample_size() > MIN_SAMPLE_ROWS
