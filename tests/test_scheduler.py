"""The uncertainty-aware scheduling tier (repro.scheduler + serving glue).

Covers the predicted-cost queue (memoized estimation, structural
invariants), the three policies (fifo / edf-slack / budget-fair) and
their determinism properties — equal-deadline ties break by arrival
order, dispatch order is invariant to how many threads fed the queue,
a drained queue carries zero state — plus the deficit-round-robin
budgets, the SchedulingAdmission policy (deferral, dispatch on release,
queue-full refusal, timeouts, predicted-drain Retry-After), the v2 wire
fields (deadline_ms / priority / scheduler stats section), and the
config-driven build_admission factory.
"""

import threading

import pytest

from repro.api import Session, SessionConfig
from repro.api.wire import (
    BatchRequest,
    PredictRequest,
    SchedulerStats,
    StatsSnapshot,
    scheduler_stats_from_dict,
    scheduler_stats_to_dict,
)
from repro.errors import SchedulerError, SessionError, WireError, error_code
from repro.scheduler import (
    DEFAULT_SLACK,
    SCHEDULER_POLICIES,
    BudgetFairPolicy,
    CostEstimate,
    EdfSlackPolicy,
    FifoPolicy,
    PredictedCostQueue,
    QueueEntry,
    TenantBudgets,
    make_policy,
)
from repro.serving import (
    AdmissionGate,
    BoundedInFlight,
    SchedulingAdmission,
    build_admission,
)
from repro.serving.app import SessionApp, WireApp
from repro.serving.transport import WireResponse


def entry(
    tenant="acme",
    deadline=1.0,
    priority=0,
    mean=0.01,
    std=0.0,
    arrival=0.0,
):
    return QueueEntry(
        arrival_seconds=arrival,
        tenant=tenant,
        deadline_seconds=deadline,
        priority=priority,
        estimate=CostEstimate(mean=mean, std=std),
    )


def drain(queue, policy):
    """Dispatch order of everything currently queued."""
    order = []
    while True:
        popped = queue.pop_next(policy)
        if popped is None:
            return order
        order.append(popped)


# ---------------------------------------------------------------------------
# PredictedCostQueue


class TestPredictedCostQueue:
    def test_push_assigns_increasing_seq(self):
        queue = PredictedCostQueue()
        first = queue.push(entry())
        second = queue.push(entry())
        assert (first.seq, second.seq) == (0, 1)
        assert queue.depth() == 2

    def test_estimates_are_memoized_per_sql(self):
        calls = []

        def estimator(sql):
            calls.append(sql)
            return 0.25, 0.05

        queue = PredictedCostQueue(estimator)
        for _ in range(3):
            estimate = queue.estimate("SELECT 1")
        assert estimate == CostEstimate(mean=0.25, std=0.05)
        assert calls == ["SELECT 1"]
        assert queue.estimate_cache_entries() == 1

    def test_estimator_failure_becomes_zero_estimate(self):
        def estimator(sql):
            raise RuntimeError("unplannable")

        queue = PredictedCostQueue(estimator)
        assert queue.estimate("garbage") == CostEstimate()

    def test_missing_sql_or_estimator_is_zero_cost(self):
        assert PredictedCostQueue().estimate("SELECT 1") == CostEstimate()
        assert PredictedCostQueue(lambda s: (1.0, 0.0)).estimate(None) == (
            CostEstimate()
        )

    def test_cache_eviction_is_bounded_fifo(self):
        queue = PredictedCostQueue(lambda sql: (1.0, 0.0), cache_size=2)
        for sql in ("a", "b", "c"):
            queue.estimate(sql)
        assert queue.estimate_cache_entries() == 2

    def test_rejects_nonpositive_cache_size(self):
        with pytest.raises(SchedulerError, match="cache_size"):
            PredictedCostQueue(cache_size=0)

    def test_predicted_seconds_sums_queued_means(self):
        queue = PredictedCostQueue()
        queue.push(entry(mean=0.2))
        queue.push(entry(mean=0.3))
        assert queue.predicted_seconds() == pytest.approx(0.5)

    def test_remove_tolerates_already_dispatched(self):
        queue = PredictedCostQueue()
        queued = queue.push(entry())
        queue.pop_next(FifoPolicy())
        queue.remove(queued)  # no raise
        assert queue.depth() == 0

    def test_remove_that_empties_queue_drains_policy_state(self):
        queue = PredictedCostQueue()
        policy = BudgetFairPolicy(quantum_seconds=1.0)
        queued = queue.push(entry(tenant="acme"))
        queue.pop_next(policy)  # rotation now knows acme... via another push
        queued = queue.push(entry(tenant="acme"))
        policy.select([queued])
        assert policy.budgets.tenants() == ("acme",)
        queue.remove(queued, policy)
        assert policy.budgets.tenants() == ()


# ---------------------------------------------------------------------------
# policies


class TestFifoPolicy:
    def test_selects_arrival_order(self):
        queue = PredictedCostQueue()
        entries = [queue.push(entry()) for _ in range(3)]
        assert drain(queue, FifoPolicy()) == entries


class TestEdfSlackPolicy:
    def test_earliest_deadline_first(self):
        queue = PredictedCostQueue()
        late = queue.push(entry(deadline=10.0))
        soon = queue.push(entry(deadline=1.0))
        assert drain(queue, EdfSlackPolicy()) == [soon, late]

    def test_uncertain_prediction_dispatches_first_at_equal_deadline(self):
        # Same deadline, same mean: the entry whose predicted time is
        # less certain has the earlier *effective* deadline.
        queue = PredictedCostQueue()
        certain = queue.push(entry(deadline=5.0, std=0.0))
        uncertain = queue.push(entry(deadline=5.0, std=1.0))
        assert drain(queue, EdfSlackPolicy(slack=1.0)) == [uncertain, certain]

    def test_zero_slack_ignores_uncertainty(self):
        queue = PredictedCostQueue()
        certain = queue.push(entry(deadline=5.0, std=0.0))
        uncertain = queue.push(entry(deadline=5.0, std=1.0))
        assert drain(queue, EdfSlackPolicy(slack=0.0)) == [certain, uncertain]

    def test_priority_dominates_deadline(self):
        queue = PredictedCostQueue()
        urgent = queue.push(entry(deadline=0.1, priority=0))
        important = queue.push(entry(deadline=60.0, priority=5))
        assert drain(queue, EdfSlackPolicy()) == [important, urgent]

    def test_effective_deadline_formula(self):
        policy = EdfSlackPolicy(slack=2.0)
        queued = entry(arrival=10.0, deadline=1.0, std=0.25)
        assert policy.effective_deadline(queued) == pytest.approx(10.5)

    def test_rejects_negative_or_non_finite_slack(self):
        with pytest.raises(SchedulerError, match="slack"):
            EdfSlackPolicy(slack=-0.1)
        with pytest.raises(SchedulerError, match="slack"):
            EdfSlackPolicy(slack=float("nan"))


class TestMakePolicy:
    def test_builds_every_registered_policy(self):
        for name in SCHEDULER_POLICIES:
            assert make_policy(name).name == name

    def test_unknown_name_raises_coded_scheduler_error(self):
        with pytest.raises(SchedulerError) as excinfo:
            make_policy("lifo")
        assert error_code(excinfo.value) == "scheduler"

    def test_default_slack_is_95th_normal_quantile(self):
        assert DEFAULT_SLACK == pytest.approx(1.645)


# ---------------------------------------------------------------------------
# tenant budgets


class TestTenantBudgets:
    def test_equal_costs_alternate_between_tenants(self):
        queue = PredictedCostQueue()
        a = [queue.push(entry(tenant="a", mean=0.05)) for _ in range(2)]
        b = [queue.push(entry(tenant="b", mean=0.05)) for _ in range(2)]
        order = drain(queue, BudgetFairPolicy(quantum_seconds=0.05))
        assert order == [a[0], b[0], a[1], b[1]]

    def test_fairness_is_in_predicted_seconds_not_requests(self):
        # Tenant "cheap" issues 10 ms requests, tenant "heavy" 50 ms
        # ones: over one heavy dispatch, cheap gets ~5 requests through.
        queue = PredictedCostQueue()
        for _ in range(10):
            queue.push(entry(tenant="cheap", mean=0.01))
        for _ in range(2):
            queue.push(entry(tenant="heavy", mean=0.05))
        order = drain(queue, BudgetFairPolicy(quantum_seconds=0.01))
        first_heavy = next(
            i for i, e in enumerate(order) if e.tenant == "heavy"
        )
        cheap_before = sum(
            1 for e in order[:first_heavy] if e.tenant == "cheap"
        )
        assert cheap_before >= 4

    def test_within_tenant_order_is_arrival_order(self):
        queue = PredictedCostQueue()
        first = queue.push(entry(tenant="a", mean=0.2))
        second = queue.push(entry(tenant="a", mean=0.001))
        assert drain(queue, BudgetFairPolicy(quantum_seconds=0.2)) == [
            first,
            second,
        ]

    def test_idle_tenant_loses_its_deficit(self):
        budgets = TenantBudgets(quantum_seconds=0.05)
        queued = entry(tenant="a", mean=0.05)
        queued.seq = 0
        assert budgets.choose([queued]) is queued
        budgets.charge(queued)
        # "a" no longer queues anything; a round with only "b" present
        # must drop a's deficit entirely.
        other = entry(tenant="b", mean=0.05)
        other.seq = 1
        budgets.choose([other])
        assert budgets.deficit("a") == 0.0

    def test_choose_on_empty_raises(self):
        with pytest.raises(SchedulerError, match="empty"):
            TenantBudgets().choose([])

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(SchedulerError, match="quantum_seconds"):
            TenantBudgets(quantum_seconds=0.0)
        with pytest.raises(SessionError, match="quantum_seconds"):
            SessionConfig(scheduler_quantum_seconds=-1.0)

    def test_clear_zeroes_everything(self):
        budgets = TenantBudgets()
        queued = entry(tenant="a", mean=0.01)
        queued.seq = 0
        budgets.choose([queued])
        budgets.clear()
        assert budgets.tenants() == ()
        assert budgets.deficit("a") == 0.0


# ---------------------------------------------------------------------------
# determinism properties


class TestDispatchDeterminism:
    def test_equal_deadline_ties_break_by_arrival_order(self):
        for policy in (
            FifoPolicy(),
            EdfSlackPolicy(),
            BudgetFairPolicy(quantum_seconds=0.05),
        ):
            queue = PredictedCostQueue()
            entries = [
                queue.push(entry(tenant="t", deadline=5.0, mean=0.01))
                for _ in range(6)
            ]
            assert drain(queue, policy) == entries, policy.name

    @pytest.mark.parametrize("threads", [1, 4])
    def test_dispatch_order_invariant_to_feeding_thread_count(self, threads):
        # Deadlines are seconds apart, so the EDF order is a pure
        # function of the queue's *contents* — however many threads
        # raced to push, the drain must come out in deadline order.
        deadlines = [float(d) for d in (60, 10, 30, 5, 45, 20, 50, 15)]
        queue = PredictedCostQueue()
        lock = threading.Lock()

        def push_slice(worker):
            for deadline in deadlines[worker::threads]:
                with lock:
                    queue.push(entry(deadline=deadline))

        pool = [
            threading.Thread(target=push_slice, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        order = [e.deadline_seconds for e in drain(queue, EdfSlackPolicy())]
        assert order == sorted(deadlines)

    def test_drained_queue_leaves_zero_policy_state(self):
        queue = PredictedCostQueue()
        policy = BudgetFairPolicy(quantum_seconds=0.05)
        for tenant in ("a", "b", "a"):
            queue.push(entry(tenant=tenant, mean=0.05))
        drain(queue, policy)
        assert queue.depth() == 0
        assert policy.budgets.tenants() == ()
        # A fresh identical queue drains identically after the reset.
        queue2 = PredictedCostQueue()
        tenants = [
            queue2.push(entry(tenant=t, mean=0.05)).tenant
            for t in ("a", "b", "a")
        ]
        assert [
            e.tenant for e in drain(queue2, policy)
        ] == ["a", "b", "a"] and tenants == ["a", "b", "a"]


# ---------------------------------------------------------------------------
# SchedulingAdmission


def scheduling_admission(
    policy_name="fifo",
    capacity=1,
    max_queue=4,
    timeout=5.0,
    estimator=None,
    **policy_kwargs,
):
    return SchedulingAdmission(
        make_policy(policy_name, **policy_kwargs),
        estimator=estimator,
        capacity=capacity,
        max_queue=max_queue,
        queue_timeout_seconds=timeout,
    )


class TestSchedulingAdmission:
    def test_fast_path_admits_under_capacity(self):
        policy = scheduling_admission(capacity=2)
        assert policy.admit_record("/v1/predict", {"sql": "SELECT 1"})
        assert policy.in_flight() == 1
        stats = policy.stats()
        assert (stats.admitted_total, stats.refused_total) == (1, 0)
        policy.release()

    def test_defers_then_dispatches_on_release(self):
        policy = scheduling_admission(capacity=1, timeout=10.0)
        assert policy.admit()
        outcomes = []

        def deferred():
            outcomes.append(
                policy.admit_record("/v1/predict", {"sql": "SELECT 1"})
            )

        waiter = threading.Thread(target=deferred)
        waiter.start()
        deadline = threading.Event()
        for _ in range(200):
            if policy.scheduler_stats().queue_depth == 1:
                break
            deadline.wait(0.01)
        assert policy.scheduler_stats().queue_depth == 1
        policy.release()
        waiter.join(timeout=5.0)
        assert outcomes == [True]
        assert policy.scheduler_stats().dispatched_total == 1
        policy.release()

    def test_refuses_when_queue_is_full(self):
        policy = scheduling_admission(capacity=1, max_queue=1, timeout=10.0)
        assert policy.admit()
        waiter = threading.Thread(
            target=policy.admit_record, args=("/v1/predict", {})
        )
        waiter.start()
        for _ in range(200):
            if policy.scheduler_stats().queue_depth == 1:
                break
            threading.Event().wait(0.01)
        # The queue is at max_queue: the next arrival is refused fast.
        assert not policy.admit_record("/v1/predict", {})
        assert policy.stats().refused_total == 1
        policy.release()
        waiter.join(timeout=5.0)
        policy.release()

    def test_queued_request_times_out_to_refusal(self):
        policy = scheduling_admission(capacity=1, timeout=0.05)
        assert policy.admit()
        assert not policy.admit_record("/v1/predict", {"sql": "SELECT 1"})
        stats = policy.scheduler_stats()
        assert stats.timeouts_total == 1
        assert stats.queue_depth == 0
        assert policy.stats().refused_total == 1
        policy.release()

    def test_retry_after_is_predicted_drain_time(self):
        policy = scheduling_admission(
            capacity=2, max_queue=8, timeout=10.0,
            estimator=lambda sql: (4.0, 0.0),
        )
        assert policy.retry_after_seconds() == 1  # empty queue: the floor
        for _ in range(2):
            assert policy.admit()
        waiters = [
            threading.Thread(
                target=policy.admit_record,
                args=("/v1/predict", {"sql": f"SELECT {i}"}),
            )
            for i in range(2)
        ]
        for waiter in waiters:
            waiter.start()
        for _ in range(200):
            if policy.scheduler_stats().queue_depth == 2:
                break
            threading.Event().wait(0.01)
        # 8 predicted seconds over capacity 2 -> ceil(4) = 4 s hint.
        assert policy.retry_after_seconds() == 4
        for _ in range(4):
            policy.release()
        for waiter in waiters:
            waiter.join(timeout=5.0)

    def test_retry_after_caps_at_five_seconds(self):
        policy = scheduling_admission(
            capacity=1, max_queue=8, timeout=10.0,
            estimator=lambda sql: (60.0, 0.0),
        )
        assert policy.admit()
        waiter = threading.Thread(
            target=policy.admit_record, args=("/v1/predict", {"sql": "S"})
        )
        waiter.start()
        for _ in range(200):
            if policy.scheduler_stats().queue_depth == 1:
                break
            threading.Event().wait(0.01)
        assert policy.retry_after_seconds() == 5
        policy.release()
        waiter.join(timeout=5.0)
        policy.release()

    def test_ticket_reads_batch_first_query_and_defaults(self):
        seen = []
        policy = scheduling_admission(
            capacity=1, estimator=lambda sql: seen.append(sql) or (0.1, 0.0)
        )
        queued = policy._build_entry(
            "/v1/predict-batch", {"queries": ["SELECT 7", "SELECT 8"]}
        )
        assert seen == ["SELECT 7"]
        assert queued.tenant == "default"
        assert queued.deadline_seconds == pytest.approx(1.0)
        assert queued.priority == 0

    def test_ticket_honors_wire_scheduling_fields(self):
        policy = scheduling_admission(capacity=1)
        queued = policy._build_entry(
            "/v1/predict",
            {"sql": "S", "tenant": "acme", "deadline_ms": 250, "priority": 3},
        )
        assert queued.tenant == "acme"
        assert queued.deadline_seconds == pytest.approx(0.25)
        assert queued.priority == 3

    def test_malformed_ticket_fields_fall_back_to_defaults(self):
        # Admission never rejects what the app will 400: bad types are
        # ignored here and surface as the inner app's structured error.
        policy = scheduling_admission(capacity=1)
        queued = policy._build_entry(
            "/v1/predict",
            {"sql": 17, "tenant": 5, "deadline_ms": "soon", "priority": True},
        )
        assert queued.tenant == "default"
        assert queued.deadline_seconds == pytest.approx(1.0)
        assert queued.priority == 0
        assert queued.estimate == CostEstimate()

    def test_rejects_bad_capacity_and_queue_bounds(self):
        with pytest.raises(WireError, match="max_in_flight"):
            SchedulingAdmission(FifoPolicy(), capacity=0)
        with pytest.raises(WireError, match="max_queue"):
            SchedulingAdmission(FifoPolicy(), capacity=1, max_queue=0)


# ---------------------------------------------------------------------------
# gate integration (fake inner app)


class RecordingApp(WireApp):
    """Counts handle_post calls; answers with a canned 200."""

    def __init__(self, stats_record=None):
        self.posts = []
        self._stats_record = stats_record or {"schema_version": 2}

    def health(self):
        return {"schema_version": 2, "status": "ok"}

    def handle_get(self, path):
        return WireResponse(200, dict(self._stats_record))

    def handle_post(self, path, read_body):
        self.posts.append((path, read_body()))
        return WireResponse(200, {"schema_version": 2, "ok": True})


class TestAdmissionGateScheduling:
    def test_body_is_read_once_and_forwarded(self):
        inner = RecordingApp()
        gate = AdmissionGate(inner, scheduling_admission(capacity=2))
        reads = []

        def read_body():
            reads.append(1)
            return {"sql": "SELECT 1", "schema_version": 2}

        response = gate.handle_post("/v1/predict", read_body)
        assert response.status == 200
        assert len(reads) == 1
        assert inner.posts[0][1]["sql"] == "SELECT 1"

    def test_queue_full_refusal_carries_predicted_retry_after(self):
        policy = scheduling_admission(
            capacity=1, max_queue=1, timeout=10.0,
            estimator=lambda sql: (2.0, 0.0),
        )
        gate = AdmissionGate(RecordingApp(), policy)
        assert policy.admit()
        waiter = threading.Thread(
            target=policy.admit_record, args=("/v1/predict", {"sql": "S"})
        )
        waiter.start()
        for _ in range(200):
            if policy.scheduler_stats().queue_depth == 1:
                break
            threading.Event().wait(0.01)
        refused = gate.handle_post(
            "/v1/predict", lambda: {"sql": "SELECT 1", "schema_version": 2}
        )
        assert refused.status == 503
        assert refused.record["error"]["code"] == "over-capacity"
        assert refused.retry_after == 2
        policy.release()
        waiter.join(timeout=5.0)
        policy.release()

    def test_v2_stats_gain_scheduler_section(self):
        stats_record = {"schema_version": 2, "queries_served": 0}
        gate = AdmissionGate(
            RecordingApp(stats_record), scheduling_admission(capacity=1)
        )
        response = gate.handle_get("/v1/stats?schema_version=2")
        assert response.record["scheduler"]["policy"] == "fifo"
        assert response.record["scheduler"]["queue_depth"] == 0
        assert "admission" in response.record

    def test_bounded_in_flight_stats_have_no_scheduler_section(self):
        stats_record = {"schema_version": 2, "queries_served": 0}
        gate = AdmissionGate(RecordingApp(stats_record), BoundedInFlight(1))
        response = gate.handle_get("/v1/stats?schema_version=2")
        assert "scheduler" not in response.record
        assert "admission" in response.record

    def test_unmetered_paths_bypass_scheduling(self):
        inner = RecordingApp()
        gate = AdmissionGate(inner, scheduling_admission(capacity=1))
        assert gate.policy.admit()  # saturate
        response = gate.handle_post("/v1/echo", lambda: {"x": 1})
        assert response.status == 200
        gate.policy.release()


# ---------------------------------------------------------------------------
# wire schema


class TestSchedulingWireFields:
    def test_deadline_and_priority_round_trip_at_v2(self):
        request = PredictRequest(
            sql="SELECT 1", tenant="acme", deadline_ms=250, priority=2
        )
        record = request.to_dict(version=2)
        assert (record["deadline_ms"], record["priority"]) == (250, 2)
        assert PredictRequest.from_dict(record) == request

    def test_v1_emission_refuses_scheduling_hints(self):
        request = PredictRequest(sql="SELECT 1", deadline_ms=250)
        with pytest.raises(WireError) as excinfo:
            request.to_dict(version=1)
        assert error_code(excinfo.value) == "schema-version"

    def test_v1_decode_ignores_scheduling_fields(self):
        record = {
            "schema_version": 1,
            "sql": "SELECT 1",
            "deadline_ms": 250,
            "priority": 2,
        }
        request = PredictRequest.from_dict(record)
        assert request.deadline_ms is None and request.priority is None

    def test_absent_fields_stay_absent_on_the_wire(self):
        record = PredictRequest(sql="SELECT 1").to_dict(version=2)
        assert "deadline_ms" not in record and "priority" not in record

    def test_batch_requests_carry_the_same_fields(self):
        batch = BatchRequest(
            queries=("SELECT 1",), deadline_ms=500, priority=-1
        )
        record = batch.to_dict(version=2)
        assert (record["deadline_ms"], record["priority"]) == (500, -1)
        assert BatchRequest.from_dict(record) == batch

    @pytest.mark.parametrize("deadline", [0, -5, 1.5, "soon", True])
    def test_invalid_deadline_is_a_payload_error(self, deadline):
        with pytest.raises(WireError, match="deadline_ms"):
            PredictRequest(sql="S", deadline_ms=deadline)

    @pytest.mark.parametrize("priority", [1.5, "high", False])
    def test_invalid_priority_is_a_payload_error(self, priority):
        with pytest.raises(WireError, match="priority"):
            PredictRequest(sql="S", priority=priority)

    def test_scheduler_stats_round_trip(self):
        stats = SchedulerStats(
            policy="edf-slack",
            queue_depth=3,
            queued_predicted_seconds=1.25,
            dispatched_total=17,
            timeouts_total=2,
        )
        assert scheduler_stats_from_dict(scheduler_stats_to_dict(stats)) == (
            stats
        )

    def test_snapshot_scheduler_section_is_v2_only(self, tpch_db, calibrated_units):
        session = Session.from_components(
            tpch_db, calibrated_units, SessionConfig()
        )
        snapshot = StatsSnapshot(
            report=session.service.report(),
            scheduler=SchedulerStats(
                policy="budget-fair",
                queue_depth=1,
                queued_predicted_seconds=0.5,
                dispatched_total=4,
                timeouts_total=0,
            ),
        )
        v2 = snapshot.to_dict(version=2)
        assert v2["scheduler"]["policy"] == "budget-fair"
        assert "scheduler" not in snapshot.to_dict(version=1)
        parsed = StatsSnapshot.from_dict(v2)
        assert parsed.scheduler == snapshot.scheduler
        assert "scheduler: policy budget-fair" in snapshot.render()


# ---------------------------------------------------------------------------
# config + factory + end-to-end


class TestConfigAndFactory:
    def test_scheduler_knobs_validate(self):
        with pytest.raises(SessionError, match="scheduler policy"):
            SessionConfig(scheduler_policy="lifo")
        with pytest.raises(SessionError, match="scheduler_slack"):
            SessionConfig(scheduler_slack=-1.0)
        with pytest.raises(SessionError, match="scheduler_default_deadline_ms"):
            SessionConfig(scheduler_default_deadline_ms=0)
        with pytest.raises(SessionError, match="scheduler_max_queue"):
            SessionConfig(scheduler_max_queue=0)
        with pytest.raises(SessionError, match="scheduler_queue_timeout"):
            SessionConfig(scheduler_queue_timeout_seconds=0.0)

    def test_config_round_trips_scheduler_fields(self):
        config = SessionConfig(
            scheduler_policy="budget-fair", scheduler_slack=2.0
        )
        assert SessionConfig.from_dict(config.to_dict()) == config

    def test_fifo_config_builds_the_original_policy(
        self, tpch_db, calibrated_units
    ):
        session = Session.from_components(
            tpch_db, calibrated_units, SessionConfig()
        )
        policy = build_admission(session, 4)
        assert type(policy) is BoundedInFlight
        assert policy.capacity == 4

    def test_scheduling_config_builds_scheduling_admission(
        self, tpch_db, calibrated_units
    ):
        session = Session.from_components(
            tpch_db,
            calibrated_units,
            SessionConfig(
                scheduler_policy="edf-slack",
                scheduler_slack=2.0,
                scheduler_max_queue=7,
            ),
        )
        policy = build_admission(session, 2)
        assert type(policy) is SchedulingAdmission
        assert policy.capacity == 2
        assert policy.scheduling_policy.name == "edf-slack"
        assert policy.scheduling_policy.slack == 2.0

    def test_session_estimate_matches_served_prediction(
        self, tpch_db, calibrated_units
    ):
        session = Session.from_components(
            tpch_db, calibrated_units, SessionConfig()
        )
        sql = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"
        mean, std = session.estimate(sql)
        response = session.predict(sql)
        assert mean == response.results[0].mean
        assert std == response.results[0].std

    def test_gate_serves_identical_predictions_under_scheduling(
        self, tpch_db, calibrated_units
    ):
        # The scheduling tier reorders *when* requests run, never what
        # they answer: a deadline-stamped request through the edf-slack
        # gate is bitwise identical to a direct session prediction.
        config = SessionConfig(scheduler_policy="edf-slack")
        session = Session.from_components(tpch_db, calibrated_units, config)
        gate = AdmissionGate(SessionApp(session), build_admission(session, 2))
        sql = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"
        wire = PredictRequest(sql=sql, deadline_ms=200, tenant="acme")
        response = gate.handle_post(
            "/v1/predict", lambda: wire.to_dict(version=2)
        )
        assert response.status == 200
        direct = session.predict(PredictRequest(sql=sql, tenant="acme"))
        served = response.record["results"]
        assert served[0]["mean"] == direct.results[0].mean
        assert served[0]["std"] == direct.results[0].std
        assert gate.policy.stats().admitted_total == 1
