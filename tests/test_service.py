"""The batch prediction service and the vectorized variance assembly.

The vectorized matrix path must reproduce the scalar reference
implementation (kept as the executable specification) within float
tolerance on randomized synthetic plans and on real planned queries,
across all four predictor variants; the service must plan/prepare each
distinct query once and serve repeats from cache.
"""

import numpy as np
import pytest

from repro.calibration.calibrator import CalibratedUnits
from repro.core import UncertaintyPredictor, Variant
from repro.core.predictor import VARIANT_OPTIONS
from repro.core.variance import (
    VectorizedAssembler,
    assemble_distribution_parameters,
    assemble_distribution_parameters_reference,
)
from repro.costfuncs.families import C1, C2, C3, C4, C5, C6
from repro.costfuncs.fitting import FittedCostFunction, OperatorCostFunctions
from repro.errors import PredictionError
from repro.mathstats import NormalDistribution
from repro.plan import HashJoinNode, SeqScanNode, SortNode, assign_op_ids
from repro.sampling.estimator import NodeSelectivity, SamplingEstimate
from repro.service import PredictionService, PreparedCache, plan_signature
from repro.workloads.tpch_templates import TPCH_TEMPLATES


class _PlanStub:
    """The assemblers only need ``.root``."""

    def __init__(self, root):
        self.root = root


# ---------------------------------------------------------------------------
# Randomized synthetic plans: property test across all four variants.
# ---------------------------------------------------------------------------


def _random_case(rng):
    """A random plan + estimate + fitted functions + units."""
    n_scans = int(rng.integers(2, 5))
    aliases = list("abcd"[:n_scans])
    nodes = [SeqScanNode(table=alias, alias=alias) for alias in aliases]
    while len(nodes) > 1:
        left = nodes.pop(int(rng.integers(len(nodes))))
        right = nodes.pop(int(rng.integers(len(nodes))))
        nodes.append(HashJoinNode(keys=[("a.k", "b.k")], children=[left, right]))
    root = nodes[0]
    with_sort = bool(rng.integers(2))
    if with_sort:
        root = SortNode(keys=[("a.k", False)], children=[root])
    assign_op_ids(root)

    n = 500
    per_node = {}
    for node in root.walk():
        leaf = node.leaf_aliases()
        if node.is_scan:
            rho = float(rng.uniform(0.05, 0.95))
            variance = rho * (1.0 - rho) / n if rng.uniform() < 0.85 else 0.0
            per_node[node.op_id] = NodeSelectivity(
                op_id=node.op_id,
                mean=rho,
                variance=variance,
                var_components={leaf[0]: variance},
                leaf_aliases=leaf,
                sample_sizes={leaf[0]: n},
                source="sample",
            )
        elif node.is_join:
            rho = float(rng.uniform(0.001, 0.2))
            cap = rho * (1.0 - rho) / n
            shares = rng.uniform(0.0, 1.0, size=len(leaf))
            components = {
                alias: float(cap * share) for alias, share in zip(leaf, shares)
            }
            per_node[node.op_id] = NodeSelectivity(
                op_id=node.op_id,
                mean=rho,
                variance=sum(components.values()),
                var_components=components,
                leaf_aliases=leaf,
                sample_sizes={alias: n for alias in leaf},
                source="sample",
            )
        else:  # sort: pass-through alias of its child's variable
            per_node[node.op_id] = NodeSelectivity(
                op_id=node.op_id,
                mean=float("nan"),
                variance=0.0,
                var_components={},
                leaf_aliases=leaf,
                sample_sizes={},
                source="alias",
                alias_of=node.children[0].op_id,
            )
    estimate = SamplingEstimate(per_node=per_node)

    scan_families = (C1, C2)
    join_families = (C3, C4, C5, C6)
    fitted = {}
    for node in root.walk():
        functions = {}
        for unit in ("cs", "cr", "ct", "ci", "co"):
            if rng.uniform() < 0.4:
                continue
            if node.is_scan:
                family = scan_families[int(rng.integers(len(scan_families)))]
                bindings = {"x": estimate.resolve(node.op_id).op_id}
            else:
                family = join_families[int(rng.integers(len(join_families)))]
                bindings = {}
                if "xl" in family.variables:
                    bindings["xl"] = estimate.resolve(
                        node.children[0].op_id
                    ).op_id
                if "xr" in family.variables:
                    right = (
                        node.children[1]
                        if len(node.children) > 1
                        else node.children[0]
                    )
                    bindings["xr"] = estimate.resolve(right.op_id).op_id
                if "x" in family.variables:
                    bindings["x"] = estimate.resolve(node.op_id).op_id
            bindings = {
                var: bindings[var] for var in family.variables
            }
            coefficients = rng.uniform(0.0, 100.0, size=family.num_coefficients)
            coefficients[rng.uniform(size=len(coefficients)) < 0.2] = 0.0
            functions[unit] = FittedCostFunction(
                unit=unit,
                family=family,
                coefficients=coefficients,
                var_bindings=bindings,
            )
        fitted[node.op_id] = OperatorCostFunctions(node.op_id, functions)

    distributions = {}
    for name in ("cs", "cr", "ct", "ci", "co"):
        mean = float(rng.uniform(1e-4, 1.0))
        variance = float(rng.uniform(0.0, (0.2 * mean) ** 2))
        if rng.uniform() < 0.2:
            variance = 0.0
        distributions[name] = NormalDistribution(mean, variance)
    units = CalibratedUnits(distributions=distributions, samples={})
    return _PlanStub(root), estimate, fitted, units


@pytest.mark.parametrize("seed", range(25))
def test_vectorized_matches_reference_on_random_plans(seed):
    rng = np.random.default_rng(seed)
    planned, estimate, fitted, units = _random_case(rng)
    assembler = VectorizedAssembler(planned, estimate, fitted)
    for variant in Variant:
        options = VARIANT_OPTIONS[variant]
        reference = assemble_distribution_parameters_reference(
            planned, estimate, fitted, units, options
        )
        vectorized = assembler.assemble(units, options)
        # The scalar reference evaluates monomial covariances even for
        # variable-disjoint independent pairs, accumulating O(eps * mean^2)
        # of float reassociation noise around the true value 0 that the
        # vectorized path skips exactly; the absolute floor covers it.
        noise = 1e-12 * (1.0 + reference.mean**2)
        for attr in (
            "mean",
            "variance",
            "exact_selectivity_term",
            "bounded_covariance_term",
            "cost_unit_term",
        ):
            assert getattr(vectorized, attr) == pytest.approx(
                getattr(reference, attr), rel=1e-9, abs=noise
            ), (seed, variant, attr)
        for unit, value in reference.per_unit_mean.items():
            assert vectorized.per_unit_mean[unit] == pytest.approx(
                value, rel=1e-9, abs=1e-15
            )


def test_vectorized_matches_reference_on_real_plans(
    optimizer, sample_db, calibrated_units
):
    predictor = UncertaintyPredictor(calibrated_units)
    rng = np.random.default_rng(4)
    for template in TPCH_TEMPLATES[:6]:
        planned = optimizer.plan_sql(template.instantiate(rng))
        prepared = predictor.prepare(planned, sample_db)
        for variant in Variant:
            options = VARIANT_OPTIONS[variant]
            reference = assemble_distribution_parameters_reference(
                planned, prepared.estimate, prepared.fitted,
                calibrated_units, options,
            )
            vectorized = assemble_distribution_parameters(
                planned, prepared.estimate, prepared.fitted,
                calibrated_units, options,
            )
            assert vectorized.mean == pytest.approx(reference.mean, rel=1e-9)
            assert vectorized.variance == pytest.approx(
                reference.variance, rel=1e-9, abs=1e-18
            )


def test_assembler_with_no_terms():
    root = assign_op_ids(SeqScanNode(table="a", alias="a"))
    estimate = SamplingEstimate(
        per_node={
            0: NodeSelectivity(
                op_id=0,
                mean=0.5,
                variance=0.01,
                var_components={"a": 0.01},
                leaf_aliases=("a",),
                sample_sizes={"a": 100},
                source="sample",
            )
        }
    )
    fitted = {0: OperatorCostFunctions(0, {})}
    units = CalibratedUnits(
        distributions={
            name: NormalDistribution(1.0, 0.1)
            for name in ("cs", "cr", "ct", "ci", "co")
        },
        samples={},
    )
    breakdown = assemble_distribution_parameters(
        _PlanStub(root), estimate, fitted, units
    )
    assert breakdown.mean == 0.0
    assert breakdown.variance == 0.0


# ---------------------------------------------------------------------------
# The service: caching, fan-out, batch bookkeeping.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def service(tpch_db, calibrated_units):
    return PredictionService(
        tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
    )


SQL_A = (
    "SELECT * FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 100000"
)
SQL_B = (
    "SELECT * FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 200000"
)


class TestPredictionService:
    def test_duplicate_queries_hit_cache(self, service):
        batch = service.predict_batch([SQL_A, SQL_A, SQL_A])
        assert [p.prepare_was_cached for p in batch][1:] == [True, True]
        means = {p.mean for p in batch}
        assert len(means) == 1

    def test_distinct_constants_miss_cache(self, service):
        batch = service.predict_batch([SQL_A, SQL_B])
        assert batch.predictions[1].prepare_was_cached is False
        assert batch.predictions[0].mean != batch.predictions[1].mean

    def test_matches_direct_predictor(
        self, service, tpch_db, optimizer, calibrated_units
    ):
        prediction = service.predict_query(SQL_A)
        planned = optimizer.plan_sql(SQL_A)
        direct = UncertaintyPredictor(calibrated_units).predict(
            planned, service.sample_db
        )
        assert prediction.mean == pytest.approx(direct.mean, rel=1e-9)
        assert prediction.std == pytest.approx(direct.std, rel=1e-9)

    def test_fan_out_covers_all_combinations(self, service):
        variants = (Variant.ALL, Variant.NO_COV)
        mpls = (1, 4)
        prediction = service.predict_query(SQL_A, variants=variants, mpls=mpls)
        assert set(prediction.results) == {
            (variant, mpl) for variant in variants for mpl in mpls
        }
        assert prediction.result(Variant.ALL, 4).mean > prediction.result().mean

    def test_missing_combination_rejected(self, service):
        prediction = service.predict_query(SQL_A)
        with pytest.raises(PredictionError):
            prediction.result(Variant.NO_COV, 7)

    def test_empty_fanout_rejected(self, service):
        with pytest.raises(PredictionError):
            service.predict_query(SQL_A, variants=())

    def test_accepts_preplanned_queries(self, service, optimizer):
        planned = optimizer.plan_sql(SQL_A)
        prediction = service.predict_query(planned)
        assert prediction.sql is None
        assert prediction.mean > 0

    def test_stats_accumulate(self, tpch_db, calibrated_units):
        fresh = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
        )
        fresh.predict_batch([SQL_A, SQL_A, SQL_B], mpls=(1, 2))
        stats = fresh.stats
        assert stats.queries_served == 3
        assert stats.plans_built == 2
        assert stats.prepares_run == 2
        assert stats.prepare_cache_hits == 1
        assert stats.assemblies == 6
        assert stats.prepare_hit_rate == pytest.approx(1 / 3)

    def test_batch_bookkeeping(self, service):
        batch = service.predict_batch([SQL_A, SQL_B])
        assert len(batch) == 2
        assert batch.elapsed_seconds > 0
        assert batch.queries_per_second > 0
        assert batch.failures == []

    def test_batch_aborts_on_failure_by_default(self, service):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            service.predict_batch([SQL_A, "SELEC nope"])

    def test_skip_failures_isolates_bad_queries(self, service):
        batch = service.predict_batch(
            [SQL_A, "SELEC nope", SQL_B], skip_failures=True
        )
        assert len(batch) == 2
        assert len(batch.failures) == 1
        failure = batch.failures[0]
        assert failure.index == 1
        assert failure.sql == "SELEC nope"
        assert "SqlParseError" in failure.error
        assert batch.stats.queries_failed == 1

    def test_skip_failures_covers_non_library_errors(self, service):
        # Regression: a parseable query whose predicate compares a string
        # column to a number fails inside numpy (UFuncTypeError), outside
        # the ReproError hierarchy — it must still degrade per query.
        bad = "SELECT * FROM orders WHERE o_orderpriority > 5"
        batch = service.predict_batch([bad, SQL_A], skip_failures=True)
        assert len(batch) == 1
        assert len(batch.failures) == 1
        assert batch.failures[0].index == 0

    def test_batch_stats_are_batch_scoped(self, tpch_db, calibrated_units):
        fresh = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, seed=3
        )
        first = fresh.predict_batch([SQL_A, SQL_B])
        second = fresh.predict_batch([SQL_A, SQL_B])
        # Second batch: everything served from cache, and its stats do not
        # drag in the first batch's counters (nor mutate afterwards).
        assert first.stats.queries_served == 2
        assert first.stats.prepares_run == 2
        assert second.stats.queries_served == 2
        assert second.stats.prepares_run == 0
        assert second.stats.prepare_cache_hits == 2
        assert second.stats.prepare_hit_rate == 1.0
        assert fresh.stats.queries_served == 4

    def test_plan_memoization_is_bounded(self, tpch_db, calibrated_units):
        small = PredictionService(
            tpch_db, calibrated_units, sampling_ratio=0.05, seed=3,
            cache_size=2,
        )
        thresholds = (100000, 150000, 200000, 250000)
        for threshold in thresholds:
            small.predict_query(
                "SELECT * FROM orders, lineitem "
                f"WHERE o_orderkey = l_orderkey AND o_totalprice > {threshold}"
            )
        assert len(small._plans) == 2
        assert len(small.prepared_cache) == 2


class TestPlanSignature:
    def test_same_sql_same_signature(self, optimizer):
        first = plan_signature(optimizer.plan_sql(SQL_A))
        second = plan_signature(optimizer.plan_sql(SQL_A))
        assert first == second

    def test_different_constants_different_signature(self, optimizer):
        assert plan_signature(optimizer.plan_sql(SQL_A)) != plan_signature(
            optimizer.plan_sql(SQL_B)
        )

    def test_template_instantiations_differ(self, optimizer):
        rng = np.random.default_rng(0)
        template = TPCH_TEMPLATES[1]
        signatures = {
            plan_signature(optimizer.plan_sql(template.instantiate(rng)))
            for _ in range(4)
        }
        assert len(signatures) > 1

    # -- collision audit: join keys, join kind, aggregate mode ------------

    @staticmethod
    def _signed(root):
        class _Planned:
            alias_tables = {"a": "t", "b": "t"}

        planned = _Planned()
        planned.root = assign_op_ids(root)
        return plan_signature(planned)

    @staticmethod
    def _join_children():
        return [
            SeqScanNode(table="t", alias="a"),
            SeqScanNode(table="t", alias="b"),
        ]

    def test_join_kind_is_captured(self):
        from repro.plan import MergeJoinNode

        hash_sig = self._signed(
            HashJoinNode(keys=[("a.k", "b.k")], children=self._join_children())
        )
        merge_sig = self._signed(
            MergeJoinNode(keys=[("a.k", "b.k")], children=self._join_children())
        )
        assert hash_sig != merge_sig

    def test_join_keys_are_captured(self):
        one = self._signed(
            HashJoinNode(keys=[("a.k", "b.k")], children=self._join_children())
        )
        other = self._signed(
            HashJoinNode(keys=[("a.j", "b.j")], children=self._join_children())
        )
        assert one != other

    def test_aggregate_function_is_captured(self):
        # Regression: the aggregate label carries only group keys and
        # output names, so SUM(v) AS x and MAX(v) AS x used to collide.
        from repro.plan import AggregateNode, AggSpec, ScalarExpr

        def agg(func):
            return AggregateNode(
                group_keys=["a.k"],
                aggregates=[
                    AggSpec(
                        func=func,
                        argument=ScalarExpr(("col", "a.v")),
                        output_name="x",
                    )
                ],
                children=[SeqScanNode(table="t", alias="a")],
            )

        class _Planned:
            alias_tables = {"a": "t"}

        signatures = set()
        for func in ("SUM", "MAX"):
            planned = _Planned()
            planned.root = assign_op_ids(agg(func))
            signatures.add(plan_signature(planned))
        assert len(signatures) == 2

    def test_aggregate_distinct_flag_is_captured(self):
        from repro.plan import AggregateNode, AggSpec, ScalarExpr

        def agg(distinct):
            return AggregateNode(
                group_keys=["a.k"],
                aggregates=[
                    AggSpec(
                        func="COUNT",
                        argument=ScalarExpr(("col", "a.v")),
                        output_name="x",
                        distinct=distinct,
                    )
                ],
                children=[SeqScanNode(table="t", alias="a")],
            )

        class _Planned:
            alias_tables = {"a": "t"}

        signatures = set()
        for distinct in (False, True):
            planned = _Planned()
            planned.root = assign_op_ids(agg(distinct))
            signatures.add(plan_signature(planned))
        assert len(signatures) == 2


class TestPreparedCache:
    def test_lru_eviction(self):
        cache = PreparedCache(maxsize=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"  # refreshes "a"
        cache.put(("c",), "C")  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"
        assert cache.stats.evictions == 1

    def test_hit_rate(self):
        cache = PreparedCache(maxsize=4)
        # Before any lookup there is no rate — not a misleading 0%.
        assert cache.stats.hit_rate is None
        assert cache.stats.describe() == "no lookups"
        cache.put(("a",), "A")
        cache.get(("a",))
        cache.get(("missing",))
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.describe() == "50% (1/2)"

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PreparedCache(maxsize=0)
