"""Unit tests for the layered serving tier (repro.serving).

Covers the layers in isolation: admission policies and their
``Retry-After`` derivation, consistent-hash routing determinism,
cross-worker stats aggregation (sums, hit-rate recombination,
None-on-zero-traffic), the SO_REUSEPORT-unavailable fallback, and the
client side of the ``Retry-After`` contract. The multi-process
integration paths live in ``test_serving_pool.py``.
"""

import json
import random
import warnings
import zlib

import pytest

from repro.api.client import RETRY_AFTER_CAP_SECONDS, ApiError, HttpClient
from repro.api.config import ClientConfig
from repro.api.wire import (
    SCHEMA_VERSION,
    AdmissionStats,
    StatsSnapshot,
    admission_stats_to_dict,
    dumps,
    feedback_stats_to_dict,
    service_report_from_dict,
)
from repro.errors import ServingError, SessionError, WireError, error_code
from repro.feedback import FeedbackStats, TenantFeedback
from repro.serving import (
    BoundedInFlight,
    ConsistentHashRouter,
    aggregate_report_records,
    aggregate_snapshots,
    aggregate_stats_records,
    resolve_mode,
)
from repro.serving import pool as pool_module


# ---------------------------------------------------------------------------
# admission


class TestBoundedInFlight:
    def test_admits_up_to_capacity_then_refuses(self):
        policy = BoundedInFlight(2)
        assert policy.admit()
        assert policy.admit()
        assert not policy.admit()
        policy.release()
        assert policy.admit()
        for _ in range(2):
            policy.release()

    def test_in_flight_tracks_admissions(self):
        policy = BoundedInFlight(3)
        assert policy.in_flight() == 0
        policy.admit()
        policy.admit()
        assert policy.in_flight() == 2
        policy.release()
        assert policy.in_flight() == 1
        policy.release()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(WireError, match="max_in_flight must be >= 1"):
            BoundedInFlight(0)

    def test_retry_after_is_one_second_at_refusal(self):
        # The wire contract: the pre-refactor server always sent
        # ``Retry-After: 1``; a full-but-not-overcommitted semaphore
        # must keep producing exactly that.
        policy = BoundedInFlight(4)
        for _ in range(4):
            policy.admit()
        assert not policy.admit()
        assert policy.retry_after_seconds() == 1
        for _ in range(4):
            policy.release()

    def test_retry_after_floor_is_one_when_idle(self):
        assert BoundedInFlight(8).retry_after_seconds() == 1


# ---------------------------------------------------------------------------
# routing


class TestConsistentHashRouter:
    def test_owner_is_deterministic_and_in_range(self):
        router = ConsistentHashRouter(4)
        keys = [f"plan-{i}" for i in range(200)]
        owners = [router.owner(key) for key in keys]
        assert owners == [ConsistentHashRouter(4).owner(k) for k in keys]
        assert set(owners) <= set(range(4))

    def test_single_worker_owns_everything(self):
        router = ConsistentHashRouter(1)
        assert {router.owner(f"k{i}") for i in range(50)} == {0}

    def test_ring_is_reasonably_balanced(self):
        router = ConsistentHashRouter(4)
        rng = random.Random(7)
        counts = [0, 0, 0, 0]
        for _ in range(2000):
            counts[router.owner(f"key-{rng.random()}")] += 1
        # 64 virtual nodes per worker: no worker should starve or hog.
        assert min(counts) > 2000 / 4 * 0.4
        assert max(counts) < 2000 / 4 * 2.0

    def test_hash_is_crc32_not_process_seeded(self):
        # Every worker process must compute the same owner; builtin
        # hash() is per-process randomized and must not be involved.
        router = ConsistentHashRouter(3)
        key = "SELECT * FROM orders"
        point = zlib.crc32(key.encode("utf-8"))
        assert router.owner(key) == router._owners[
            min(
                (i for i, p in enumerate(router._points) if p > point),
                default=0,
            )
        ]

    def test_scaling_preserves_most_placements(self):
        # The consistent-hashing property: growing the pool moves only
        # ~1/new_workers of the keys, not all of them.
        before = ConsistentHashRouter(3)
        after = ConsistentHashRouter(4)
        keys = [f"plan-{i}" for i in range(1000)]
        moved = sum(before.owner(k) != after.owner(k) for k in keys)
        assert moved < 600

    def test_rejects_bad_arguments(self):
        with pytest.raises(ServingError):
            ConsistentHashRouter(0)
        with pytest.raises(ServingError):
            ConsistentHashRouter(2, replicas=0)


# ---------------------------------------------------------------------------
# stats aggregation


def _report_record(
    served=0, failed=0, plans=0, prepares=0, prepare_hits=0, assemblies=0,
    cache_hits=0, cache_misses=0, entries=0,
):
    lookups = prepares + prepare_hits
    cache_lookups = cache_hits + cache_misses
    return {
        "schema_version": SCHEMA_VERSION,
        "stats": {
            "queries_served": served,
            "queries_failed": failed,
            "plans_built": plans,
            "prepares_run": prepares,
            "prepare_cache_hits": prepare_hits,
            "assemblies": assemblies,
            "prepare_hit_rate": prepare_hits / lookups if lookups else None,
        },
        "prepared_cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "evictions": 0,
            "oversized": 0,
            "hit_rate": (
                cache_hits / cache_lookups if cache_lookups else None
            ),
        },
        "prepared_entries": entries,
        "sampling_cache": {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "oversized": 0,
            "hit_rate": None,
        },
        "sampling_entries": 0,
        "sampling_bytes_used": 0,
        "sampling_bytes_budget": 1024,
    }


class TestStatsAggregation:
    def test_aggregate_of_one_record_is_identity(self):
        # workers=1 must be indistinguishable from the pre-refactor
        # server on /v1/stats — byte-identical under the wire encoder.
        record = _report_record(
            served=5, plans=5, prepares=2, prepare_hits=3,
            cache_hits=3, cache_misses=2, entries=2,
        )
        assert dumps(aggregate_report_records([record])) == dumps(record)

    def test_counters_sum_and_rates_recombine(self):
        a = _report_record(
            served=8, failed=1, plans=9, prepares=4, prepare_hits=4,
            cache_hits=4, cache_misses=4, entries=4,
        )
        b = _report_record(
            served=2, failed=0, plans=2, prepares=2, prepare_hits=0,
            cache_hits=0, cache_misses=2, entries=2,
        )
        merged = aggregate_report_records([a, b])
        assert merged["stats"]["queries_served"] == 10
        assert merged["stats"]["queries_failed"] == 1
        assert merged["stats"]["plans_built"] == 11
        # 4 hits over 10 lookups — NOT the mean of 0.5 and 0.0.
        assert merged["stats"]["prepare_hit_rate"] == pytest.approx(0.4)
        assert merged["prepared_cache"]["hits"] == 4
        assert merged["prepared_cache"]["misses"] == 6
        assert merged["prepared_cache"]["hit_rate"] == pytest.approx(0.4)
        assert merged["prepared_entries"] == 6
        assert merged["sampling_bytes_budget"] == 2048

    def test_zero_traffic_pool_reports_none_rates(self):
        merged = aggregate_report_records(
            [_report_record(), _report_record(), _report_record()]
        )
        assert merged["stats"]["prepare_hit_rate"] is None
        assert merged["prepared_cache"]["hit_rate"] is None
        assert merged["sampling_cache"]["hit_rate"] is None

    def test_aggregate_parses_as_service_report(self):
        merged = aggregate_report_records(
            [_report_record(served=3, plans=3), _report_record(served=4, plans=4)]
        )
        report = service_report_from_dict(merged)
        assert report.stats.queries_served == 7

    def test_empty_input_raises_serving_error(self):
        with pytest.raises(ServingError):
            aggregate_report_records([])

    def test_stats_records_missing_fields_default_to_zero(self):
        merged = aggregate_stats_records([{}, {"queries_served": 3}])
        assert merged["queries_served"] == 3
        assert merged["prepare_hit_rate"] is None


def _v2_record(served=0, admission=None, feedback=None, **kwargs):
    record = _report_record(served=served, **kwargs)
    record["schema_version"] = 2
    if admission is not None:
        record["admission"] = admission_stats_to_dict(admission)
    if feedback is not None:
        record["feedback"] = feedback_stats_to_dict(feedback)
    return record


def _tenant(
    name, observations=10, fill=10, active=True, drifts=0, last=None, scale=None
):
    return TenantFeedback(
        tenant=name,
        observations=observations,
        window_fill=fill,
        active=active,
        drifts_detected=drifts,
        last_drift_observation=last,
        scale=scale,
    )


def _feedback(*tenants):
    return FeedbackStats(
        observations=sum(t.observations for t in tenants),
        drifts_detected=sum(t.drifts_detected for t in tenants),
        tenants=tuple(tenants),
    )


class TestTypedAggregation:
    def test_single_v2_record_is_byte_identical(self):
        record = _v2_record(
            served=3,
            plans=3,
            admission=AdmissionStats(
                capacity=4, in_flight=1, admitted_total=9, refused_total=2
            ),
            feedback=_feedback(_tenant("default", drifts=1, last=8, scale=1.4)),
        )
        assert dumps(aggregate_report_records([record])) == dumps(record)

    def test_sections_sum_across_workers(self):
        a = _v2_record(
            served=2,
            admission=AdmissionStats(
                capacity=4, in_flight=1, admitted_total=10, refused_total=3
            ),
            feedback=_feedback(_tenant("alpha", observations=6, fill=6)),
        )
        b = _v2_record(
            served=5,
            admission=AdmissionStats(
                capacity=4, in_flight=0, admitted_total=7, refused_total=0
            ),
            feedback=_feedback(
                _tenant("alpha", observations=4, fill=4, active=False, drifts=2, last=9),
                _tenant("beta", observations=1, fill=1, scale=2.0),
            ),
        )
        merged = StatsSnapshot.from_dict(aggregate_report_records([a, b]))
        assert merged.admission == AdmissionStats(
            capacity=8, in_flight=1, admitted_total=17, refused_total=3
        )
        alpha, beta = merged.feedback.tenants
        assert alpha.observations == 10
        assert alpha.window_fill == 10
        assert alpha.active  # any shard active
        assert alpha.drifts_detected == 2
        assert alpha.last_drift_observation == 9
        assert beta.scale == 2.0  # exactly one shard reported one
        assert merged.feedback.observations == 11

    def test_conformal_scale_dropped_when_shards_disagree(self):
        # Quantiles of disjoint windows do not combine; a pool-wide
        # scale is only honest when exactly one shard owns the window.
        a = _v2_record(feedback=_feedback(_tenant("t", scale=1.5)))
        b = _v2_record(feedback=_feedback(_tenant("t", scale=2.5)))
        merged = StatsSnapshot.from_dict(aggregate_report_records([a, b]))
        (tenant,) = merged.feedback.tenants
        assert tenant.scale is None

    def test_version_stamp_is_max_of_inputs(self):
        v1 = _report_record(served=1)
        v1["schema_version"] = 1
        v2 = _v2_record(
            served=2,
            feedback=_feedback(_tenant("t")),
        )
        merged = aggregate_report_records([v1, v2])
        assert merged["schema_version"] == 2
        assert "feedback" in merged
        only_v1 = aggregate_report_records([v1, dict(v1)])
        assert only_v1["schema_version"] == 1
        assert "feedback" not in only_v1
        assert "admission" not in only_v1

    def test_aggregate_snapshots_typed_round_trip(self):
        snapshots = [
            StatsSnapshot.from_dict(_v2_record(served=3)),
            StatsSnapshot.from_dict(_v2_record(served=4)),
        ]
        pooled = aggregate_snapshots(snapshots)
        assert pooled.stats.queries_served == 7
        assert pooled.admission is None
        assert pooled.feedback is None
        with pytest.raises(ServingError):
            aggregate_snapshots([])


# ---------------------------------------------------------------------------
# pool mode resolution (the SO_REUSEPORT-unavailable fallback)


class TestResolveMode:
    def test_explicit_modes_pass_through(self, monkeypatch):
        monkeypatch.setattr(pool_module, "reuseport_available", lambda: True)
        assert resolve_mode("handoff") == "handoff"
        assert resolve_mode("reuseport") == "reuseport"

    def test_auto_prefers_reuseport_when_available(self, monkeypatch):
        monkeypatch.setattr(pool_module, "reuseport_available", lambda: True)
        assert resolve_mode("auto") == "reuseport"

    def test_auto_falls_back_to_handoff_without_reuseport(self, monkeypatch):
        monkeypatch.setattr(pool_module, "reuseport_available", lambda: False)
        assert resolve_mode("auto") == "handoff"

    def test_explicit_reuseport_errors_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(pool_module, "reuseport_available", lambda: False)
        with pytest.raises(ServingError, match="SO_REUSEPORT"):
            resolve_mode("reuseport")

    def test_unknown_mode_is_a_serving_error(self):
        with pytest.raises(ServingError, match="unknown serving mode"):
            resolve_mode("round-robin")

    def test_serving_error_carries_wire_code(self):
        assert error_code(ServingError("boom")) == "serving"


# ---------------------------------------------------------------------------
# client configuration (ClientConfig + deprecation shims)


class TestClientConfig:
    URL = "http://127.0.0.1:1"

    def test_default_config(self):
        client = HttpClient(self.URL)
        assert client.config == ClientConfig()
        assert client.config.wire_version == SCHEMA_VERSION

    def test_timeout_positional_folds_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            client = HttpClient(self.URL, 5.0)
        assert client.config == ClientConfig(timeout=5.0)

    def test_legacy_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            client = HttpClient(
                self.URL, retries_503=2, backoff_seconds=0.1, backoff_seed=7
            )
        assert client.config == ClientConfig(
            retries_503=2, backoff_seconds=0.1, backoff_seed=7
        )

    def test_legacy_and_config_together_is_bad_request(self):
        with pytest.raises(ApiError) as caught:
            HttpClient(self.URL, config=ClientConfig(), retries_503=1)
        assert caught.value.code == "bad-request"
        assert "retries_503" in caught.value.remote_message

    def test_bad_legacy_value_keeps_bad_request_contract(self):
        # The pre-ClientConfig constructor reported bad knobs as
        # ApiError(bad-request); the shims must preserve that.
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ApiError) as caught:
                HttpClient(self.URL, retries_503=-1)
        assert caught.value.code == "bad-request"

    def test_json_round_trip(self):
        config = ClientConfig(
            timeout=12.0, retries_503=3, backoff_seconds=0.2, backoff_seed=9,
            observe_tenant="replica-a",
        )
        record = json.loads(json.dumps(config.to_dict()))
        assert ClientConfig.from_dict(record) == config
        # Unknown fields from a newer writer are ignored.
        record["future_knob"] = True
        assert ClientConfig.from_dict(record) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"retries_503": -1},
            {"backoff_seconds": 0.0},
            {"retry_after_cap_seconds": 0.0},
            {"wire_version": 3},
            {"observe_tenant": ""},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SessionError):
            ClientConfig(**kwargs)


# ---------------------------------------------------------------------------
# client Retry-After honoring


class TestClientRetryAfter:
    def test_structured_error_carries_retry_after(self):
        error = ApiError(503, "over-capacity", "full", retry_after=1.0)
        assert error.retry_after == 1.0
        # And stays optional: taxonomy tests construct it without one.
        assert ApiError(400, "sql-parse", "bad").retry_after is None

    def test_hint_raises_base_to_retry_after(self):
        client = HttpClient(
            "http://127.0.0.1:1", retries_503=3, backoff_seconds=0.05,
            backoff_seed=42,
        )
        # Same jitter stream as the pure-exponential schedule, but the
        # base for attempt 0 is lifted from 0.05s to the server's 1s.
        expected = 1.0 * (0.5 + 0.5 * random.Random(42).random())
        assert client._backoff_delay(0, retry_after=1.0) == pytest.approx(
            expected
        )
        assert client.retries_performed == 1

    def test_longer_exponential_base_is_not_shortened(self):
        client = HttpClient(
            "http://127.0.0.1:1", retries_503=8, backoff_seconds=0.05,
            backoff_seed=7,
        )
        # At attempt 6 the exponential base (3.2s) exceeds the 1s hint;
        # the server hint must not make the client retry *sooner*.
        jitter = random.Random(7).random()
        expected = 0.05 * 2.0**6 * (0.5 + 0.5 * jitter)
        assert client._backoff_delay(6, retry_after=1.0) == pytest.approx(
            expected
        )

    def test_hint_is_capped(self):
        client = HttpClient(
            "http://127.0.0.1:1", retries_503=1, backoff_seconds=0.05,
            backoff_seed=3,
        )
        jitter = random.Random(3).random()
        expected = RETRY_AFTER_CAP_SECONDS * (0.5 + 0.5 * jitter)
        assert client._backoff_delay(0, retry_after=3600.0) == pytest.approx(
            expected
        )

    def test_no_hint_keeps_exponential_schedule(self):
        client = HttpClient(
            "http://127.0.0.1:1", retries_503=2, backoff_seconds=0.05,
            backoff_seed=42,
        )
        rng = random.Random(42)
        expected = [
            0.05 * 2.0**attempt * (0.5 + 0.5 * rng.random())
            for attempt in range(2)
        ]
        got = [client._backoff_delay(attempt) for attempt in range(2)]
        assert got == pytest.approx(expected)
        assert client.retries_performed == 2
