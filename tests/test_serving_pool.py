"""Integration tests for the pre-fork worker pool (socket-handoff path).

Everything here runs through ``mode="handoff"`` so the suite passes on
platforms without ``SO_REUSEPORT`` — the reuseport-specific pieces
(availability resolution) are unit-tested in ``test_serving.py``, and
the handoff path is exactly the one the graceful-shutdown satellite
must pin down.

The pool is built from a *prebuilt* session (inherited copy-on-write
across ``fork()``), so the whole multi-process suite pays the session
build cost once.
"""

import threading
import time

import pytest

from repro.api import HttpClient, Session, SessionConfig
from repro.api.wire import SCHEMA_VERSION
from repro.serving import WorkerPool
from repro.util import ensure_rng
from repro.workloads.tpch_templates import TPCH_TEMPLATES

SQL = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"


def template_queries(count=8):
    rng = ensure_rng(17)
    return [
        TPCH_TEMPLATES[i % len(TPCH_TEMPLATES)].instantiate(rng)
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def session(tpch_db, calibrated_units):
    return Session.from_components(
        tpch_db,
        calibrated_units,
        SessionConfig(sampling_ratio=0.05, sampling_seed=3),
    )


@pytest.fixture(scope="module")
def pool(session):
    with WorkerPool(
        2, session=session, mode="handoff", max_in_flight=4
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(pool):
    return HttpClient(pool.url, timeout=30.0)


class TestPoolEndpoints:
    def test_healthz_reports_pool_coordinates(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["max_in_flight"] == 4
        assert health["workers"] == 2
        assert health["worker"] in (0, 1)

    def test_predict_matches_in_process_session_bitwise(
        self, client, session
    ):
        # Whichever worker serves (or forwards) the request, every
        # predicted quantity must be exactly equal to the in-process
        # session's — == on the frozen payloads is exact float equality.
        expected = session.predict(SQL)
        got = client.predict(SQL)
        assert got.sql == expected.sql
        assert got.results == expected.results

    def test_batch_matches_in_process_session_bitwise(
        self, client, session
    ):
        queries = template_queries(6)
        expected = session.predict_batch(queries)
        got = client.predict_batch(queries)
        assert not got.failures
        for remote, local in zip(got, expected):
            assert remote.sql == local.sql
            assert remote.results == local.results

    def test_every_worker_answers_healthz(self, pool, client):
        # The kernel decides which worker accepts each connection; a
        # fresh connection per probe eventually reaches both workers.
        seen = set()
        for _ in range(40):
            seen.add(client.healthz()["worker"])
            if seen == {0, 1}:
                break
        assert seen == {0, 1}

    def test_stats_aggregate_across_workers(self, client):
        before = client.stats()
        queries = template_queries(10)
        for sql in queries:
            client.predict(sql)
        after = client.stats()
        # Wherever routing placed each query, the pool-wide aggregate
        # must account for every one of them exactly once.
        assert (
            after.stats.queries_served - before.stats.queries_served
            == len(queries)
        )

    def test_stats_parse_as_service_report(self, client):
        report = client.stats()
        assert report.stats.queries_served >= 0
        assert report.sampling_bytes_budget >= 0


class TestPoolLifecycle:
    def test_graceful_sigterm_drains_in_flight_requests(self, session):
        # The shutdown-satellite regression: a request admitted before
        # SIGTERM must complete, and every worker must exit 0.
        pool = WorkerPool(
            2, session=session, mode="handoff", max_in_flight=4
        ).start()
        client = HttpClient(pool.url, timeout=30.0)
        queries = template_queries(12)
        results = {}

        def drive():
            results["batch"] = client.predict_batch(queries)

        try:
            thread = threading.Thread(target=drive)
            thread.start()
            # Let the batch get admitted, then pull the plug mid-flight.
            time.sleep(0.05)
        finally:
            codes = pool.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes == [0, 0]
        assert "batch" in results, "in-flight batch was dropped on SIGTERM"
        assert len(results["batch"]) == len(queries)

    def test_stop_is_idempotent(self, session):
        pool = WorkerPool(1, session=session, mode="handoff").start()
        assert pool.stop() == [0]
        assert pool.stop() == []

    def test_single_worker_pool_serves(self, session):
        with WorkerPool(1, session=session, mode="handoff") as pool:
            client = HttpClient(pool.url, timeout=30.0)
            health = client.healthz()
            assert health["workers"] == 1
            assert client.predict(SQL).results == session.predict(SQL).results

    def test_bind_conflict_is_a_serving_error(self, session):
        from repro.errors import ServingError

        # Binding a worker pool on an already-claimed non-reuse port
        # cannot work; the parent must fail loudly, not hang.
        with WorkerPool(1, session=session, mode="handoff") as first:
            with pytest.raises(ServingError, match="cannot bind"):
                WorkerPool(
                    1, session=session, mode="handoff",
                    port=first.port,
                ).start()

    def test_startup_failure_surfaces_worker_traceback(
        self, tpch_db, calibrated_units
    ):
        from repro.errors import ServingError

        # A session that dies inside the forked worker (here: warmup on
        # a closed session) must surface its traceback in the parent's
        # error instead of hanging the startup rendezvous.
        doomed = Session.from_components(tpch_db, calibrated_units)
        doomed.close()
        pool = WorkerPool(
            1, session=doomed, mode="handoff", warmup=True
        )
        try:
            with pytest.raises(ServingError, match="session is closed"):
                pool.start()
        finally:
            pool.stop()

    def test_rejects_bad_construction(self, session):
        from repro.errors import ServingError

        with pytest.raises(ServingError, match="workers must be >= 1"):
            WorkerPool(0, session=session)
        with pytest.raises(ServingError, match="config or a session"):
            WorkerPool(2)
