"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlLexError, SqlParseError
from repro.sql import (
    AggCall,
    Arith,
    Between,
    ColumnRef,
    Comparison,
    InList,
    LikePrefix,
    Literal,
    TokenType,
    parse_query,
    tokenize,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM WhErE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        tokens = tokenize("LineItem L_ShipDate")
        assert tokens[0].value == "lineitem"
        assert tokens[1].value == "l_shipdate"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14", ".5"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_strings(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_operators(self):
        tokens = tokenize("= <> <= >= < > != + - / *")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "<>", "<=", ">=", "<", ">", "<>", "+", "-", "/", "*"]

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT @")

    def test_ends_with_end_token(self):
        assert tokenize("x")[-1].type is TokenType.END


class TestParserBasics:
    def test_select_star(self):
        query = parse_query("SELECT * FROM lineitem")
        assert query.select_star
        assert query.tables[0].table == "lineitem"

    def test_select_columns(self):
        query = parse_query("SELECT a, b FROM t")
        assert [item.expression.name for item in query.select] == ["a", "b"]

    def test_table_alias(self):
        query = parse_query("SELECT * FROM nation n1, nation n2")
        assert query.tables[0].alias == "n1"
        assert query.tables[1].effective_name == "n2"

    def test_qualified_column(self):
        query = parse_query("SELECT n1.n_name FROM nation n1")
        ref = query.select[0].expression
        assert ref == ColumnRef(name="n_name", qualifier="n1")

    def test_limit(self):
        assert parse_query("SELECT * FROM t LIMIT 10").limit == 10

    def test_order_by_directions(self):
        query = parse_query("SELECT * FROM t ORDER BY a DESC, b ASC, c")
        assert [(o.expression.name, o.descending) for o in query.order_by] == [
            ("a", True), ("b", False), ("c", False),
        ]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM t garbage extra tokens")

    def test_missing_from(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT a WHERE b = 1")


class TestPredicates:
    def test_comparison_literal(self):
        query = parse_query("SELECT * FROM t WHERE a >= 10")
        predicate = query.predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op == ">="
        assert predicate.right == Literal(10, "number")

    def test_comparison_column(self):
        query = parse_query("SELECT * FROM a, b WHERE a.x = b.y")
        predicate = query.predicates[0]
        assert isinstance(predicate.right, ColumnRef)

    def test_between(self):
        query = parse_query("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        predicate = query.predicates[0]
        assert isinstance(predicate, Between)
        assert (predicate.low.value, predicate.high.value) == (1, 5)

    def test_in_list(self):
        query = parse_query("SELECT * FROM t WHERE a IN ('x', 'y')")
        predicate = query.predicates[0]
        assert isinstance(predicate, InList)
        assert [v.value for v in predicate.values] == ["x", "y"]

    def test_like_prefix(self):
        query = parse_query("SELECT * FROM t WHERE a LIKE 'PROMO%'")
        predicate = query.predicates[0]
        assert isinstance(predicate, LikePrefix)
        assert predicate.prefix == "PROMO"

    def test_like_infix_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT * FROM t WHERE a LIKE '%green%'")

    def test_date_literal(self):
        query = parse_query("SELECT * FROM t WHERE d < DATE '1995-03-15'")
        literal = query.predicates[0].right
        assert literal.kind == "date"
        assert literal.value == 1169  # days since 1992-01-01

    def test_multiple_conjuncts(self):
        query = parse_query("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert len(query.predicates) == 3


class TestAggregates:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        agg = query.select[0].expression
        assert isinstance(agg, AggCall)
        assert agg.func == "COUNT" and agg.argument is None

    def test_sum_expression(self):
        query = parse_query("SELECT SUM(l_extendedprice * (1 - l_discount)) FROM t")
        agg = query.select[0].expression
        assert agg.func == "SUM"
        assert isinstance(agg.argument, Arith)
        assert agg.argument.op == "*"

    def test_count_distinct(self):
        query = parse_query("SELECT COUNT(DISTINCT a) FROM t")
        assert query.select[0].expression.distinct

    def test_avg_star_rejected(self):
        with pytest.raises(SqlParseError):
            parse_query("SELECT AVG(*) FROM t")

    def test_alias(self):
        query = parse_query("SELECT SUM(a) AS total FROM t")
        assert query.select[0].alias == "total"

    def test_group_by(self):
        query = parse_query("SELECT a, COUNT(*) FROM t GROUP BY a")
        assert query.group_by == [ColumnRef(name="a")]
        assert query.has_aggregates

    def test_arithmetic_precedence(self):
        query = parse_query("SELECT SUM(a + b * c) FROM t")
        expr = query.select[0].expression.argument
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized_expression(self):
        query = parse_query("SELECT SUM((a + b) * c) FROM t")
        expr = query.select[0].expression.argument
        assert expr.op == "*"
        assert expr.left.op == "+"
