"""The staticcheck framework: suppressions, baseline, each rule, formats.

The rule fixtures deliberately reproduce the three concurrency bugs
PR 5's replay harness had to catch at runtime — torn cache-stat reads,
an admission slot held across blocking work, and non-deterministic
retry jitter — because catching exactly those shapes *before* runtime
is the reason the framework exists.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from staticcheck import (  # noqa: E402
    ALL_CHECKS,
    Baseline,
    FileContext,
    Finding,
    apply_suppressions,
    check_file,
    parse_suppressions,
)
from staticcheck.runner import _format_github, discover_files  # noqa: E402


def ctx_for(source, path="pkg/mod.py"):
    return FileContext(Path(path), source=source)


def run_rule(rule, source, path="pkg/mod.py"):
    ctx = ctx_for(source, path)
    check = ALL_CHECKS[rule]
    if not check.applies(ctx):
        return []
    return check.run(ctx)


# ---------------------------------------------------------------------------
# suppressions


class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        source = "x = 1  # staticcheck: disable=demo-rule\n"
        (supp,) = parse_suppressions(source)
        assert supp.target == 1
        assert supp.rules == frozenset({"demo-rule"})

    def test_standalone_comment_targets_next_statement(self):
        source = (
            "a = 1\n"
            "# staticcheck: disable=lock-discipline — justified\n"
            "\n"
            "b = 2\n"
        )
        (supp,) = parse_suppressions(source)
        assert supp.line == 2
        assert supp.target == 4

    def test_multiple_rules_and_all(self):
        source = "x = 1  # staticcheck: disable=rule-a, rule-b\ny = 2  # staticcheck: disable=all\n"
        first, second = parse_suppressions(source)
        assert first.rules == frozenset({"rule-a", "rule-b"})
        assert second.rules == frozenset({"all"})

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Docs show the idiom:\n\n    # staticcheck: disable=demo\n"""\nx = 1\n'
        assert parse_suppressions(source) == []

    def test_matching_finding_is_dropped(self):
        source = "x = 1  # staticcheck: disable=demo\n"
        ctx = ctx_for(source)
        findings = [ctx.finding(1, "demo", "boom")]
        kept = apply_suppressions(ctx, findings, parse_suppressions(source))
        assert kept == []

    def test_unused_suppression_reported_on_full_run(self):
        source = "x = 1  # staticcheck: disable=demo\n"
        ctx = ctx_for(source)
        kept = apply_suppressions(ctx, [], parse_suppressions(source))
        (finding,) = kept
        assert finding.rule == "unused-suppression"
        assert "matched no finding" in finding.message

    def test_unused_suppression_silent_under_select(self):
        source = "x = 1  # staticcheck: disable=demo\n"
        ctx = ctx_for(source)
        kept = apply_suppressions(
            ctx, [], parse_suppressions(source), selected={"other"}
        )
        assert kept == []


# ---------------------------------------------------------------------------
# baseline


class TestBaseline:
    def finding(self, message="torn read"):
        return Finding(path="src/x.py", line=3, rule="lock-discipline", message=message)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self.finding()]).write(path)
        loaded = Baseline.load(path)
        fresh, expired = loaded.apply([self.finding()])
        assert fresh == []
        assert expired == []

    def test_new_finding_not_filtered(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self.finding()]).write(path)
        other = self.finding(message="different problem")
        fresh, expired = Baseline.load(path).apply([other, self.finding()])
        assert fresh == [other]
        assert expired == []

    def test_fixed_finding_expires(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([self.finding()]).write(path)
        fresh, expired = Baseline.load(path).apply([])
        assert fresh == []
        (entry,) = expired
        assert entry["message"] == "torn read"

    def test_fingerprint_ignores_line_number(self):
        moved = Finding(
            path="src/x.py", line=99, rule="lock-discipline", message="torn read"
        )
        assert moved.fingerprint == self.finding().fingerprint

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == {}


# ---------------------------------------------------------------------------
# lock-discipline


# The torn cache-stat shape from PR 5: `hits` is maintained under the
# lock in get() but bumped bare in record() — exactly what tore the
# stats() snapshot at runtime.
TORN_STATS = """
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def get(self, key):
        with self._lock:
            self.hits += 1
            return key

    def record(self):
        self.hits += 1
"""


class TestLockDiscipline:
    def test_torn_stat_mutation_flagged(self):
        (finding,) = run_rule("lock-discipline", TORN_STATS)
        assert finding.rule == "lock-discipline"
        assert "self.hits" in finding.message
        assert "self._lock" in finding.message

    def test_mutation_under_lock_clean(self):
        source = TORN_STATS.replace(
            "    def record(self):\n        self.hits += 1",
            "    def record(self):\n        with self._lock:\n            self.hits += 1",
        )
        assert run_rule("lock-discipline", source) == []

    def test_init_is_exempt(self):
        # __init__ writes guarded attrs bare by design; no finding for it.
        findings = run_rule("lock-discipline", TORN_STATS)
        assert all("__init__" not in f.message for f in findings)

    def test_mutator_method_call_flagged(self):
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def get(self, key):
        with self._lock:
            return self._entries.get(key)

    def put(self, key, value):
        self._entries[key] = value
        self._entries.update({key: value})
"""
        findings = run_rule("lock-discipline", source)
        assert len(findings) == 2

    def test_read_outside_lock_not_flagged(self):
        source = TORN_STATS.replace(
            "    def record(self):\n        self.hits += 1",
            "    def record(self):\n        return self.hits",
        )
        assert run_rule("lock-discipline", source) == []

    def test_double_acquire_nonreentrant_flagged(self):
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()

    def work(self):
        with self._lock:
            with self._lock:
                pass
"""
        (finding,) = run_rule("lock-discipline", source)
        assert "not reentrant" in finding.message

    def test_double_acquire_rlock_clean(self):
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.RLock()

    def work(self):
        with self._lock:
            with self._lock:
                pass
"""
        assert run_rule("lock-discipline", source) == []

    def test_nested_function_does_not_inherit_held_lock(self):
        # The closure runs later on another stack: its bare mutation is
        # NOT protected by the enclosing with-block.
        source = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def deferred(self):
        with self._lock:
            def later():
                self.count += 1
            return later
"""
        (finding,) = run_rule("lock-discipline", source)
        assert "deferred" in finding.message

    def test_inline_suppression_silences(self):
        source = TORN_STATS.replace(
            "    def record(self):\n        self.hits += 1",
            "    def record(self):\n"
            "        self.hits += 1  # staticcheck: disable=lock-discipline — test",
        )
        assert source != TORN_STATS
        findings = check_file_from_source(source)
        assert [f for f in findings if f.rule == "lock-discipline"] == []


def check_file_from_source(source, tmp_path=None, name="mod.py"):
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / name
        path.write_text(source)
        return check_file(path, root=Path(tmp))


# ---------------------------------------------------------------------------
# blocking-while-locked


# The admission shape from PR 5: backoff sleep while the slot/lock is
# held — every other thread queues behind a timer.
HELD_SLEEP = """
import threading
import time

class Client:
    def __init__(self):
        self._lock = threading.Lock()

    def request(self):
        with self._lock:
            time.sleep(0.2)
"""


class TestBlockingWhileLocked:
    def test_sleep_under_lock_flagged(self):
        (finding,) = run_rule("blocking-while-locked", HELD_SLEEP)
        assert "time.sleep" in finding.message
        assert "self._lock" in finding.message

    def test_sleep_outside_lock_clean(self):
        source = """
import threading
import time

class Client:
    def __init__(self):
        self._lock = threading.Lock()

    def request(self):
        with self._lock:
            attempt = 1
        time.sleep(0.2)
"""
        assert run_rule("blocking-while-locked", source) == []

    def test_lock_named_variable_recognized(self):
        source = """
import time

def work(cache_lock):
    with cache_lock:
        time.sleep(1)
"""
        (finding,) = run_rule("blocking-while-locked", source)
        assert "cache_lock" in finding.message

    def test_urlopen_via_alias_flagged(self):
        source = """
import threading
from urllib.request import urlopen

class Client:
    def __init__(self):
        self._lock = threading.Lock()

    def fetch(self, url):
        with self._lock:
            return urlopen(url)
"""
        (finding,) = run_rule("blocking-while-locked", source)
        assert "urllib.request.urlopen" in finding.message

    def test_semaphore_context_flagged(self):
        source = """
import threading
import time

def work():
    with threading.BoundedSemaphore(4):
        time.sleep(1)
"""
        (finding,) = run_rule("blocking-while-locked", source)
        assert "threading.BoundedSemaphore()" in finding.message

    def test_nested_function_resets_held_state(self):
        source = """
import threading
import time

class Client:
    def __init__(self):
        self._lock = threading.Lock()

    def plan(self):
        with self._lock:
            def retry():
                time.sleep(1)
            return retry
"""
        assert run_rule("blocking-while-locked", source) == []

    def test_hot_paths_are_clean(self):
        # Satellite audit: the client backoff, replay runner, and the
        # serving tier (admission gate, router forwards, worker pool)
        # must never sleep or do socket I/O while holding a lock.
        for rel in (
            "src/repro/api/client.py",
            "src/repro/replay/runner.py",
            "src/repro/serving/admission.py",
            "src/repro/serving/routing.py",
            "src/repro/serving/pool.py",
            "src/repro/serving/transport.py",
        ):
            ctx = FileContext(REPO_ROOT / rel, root=REPO_ROOT)
            assert ALL_CHECKS["blocking-while-locked"].run(ctx) == []

    def test_serving_forward_under_lock_flagged(self):
        # The routing layer's trap shape: relaying a request to a peer
        # worker while holding the admission counter lock would
        # serialize every forwarded request behind one mutex.
        source = """
import threading
import urllib.request

class Gate:
    def __init__(self):
        self._lock = threading.Lock()

    def forward(self, url):
        with self._lock:
            return urllib.request.urlopen(url)
"""
        findings = run_rule(
            "blocking-while-locked", source,
            path="src/repro/serving/routing.py",
        )
        assert len(findings) == 1
        assert "urlopen" in findings[0].message


# ---------------------------------------------------------------------------
# determinism


# The retry shape from PR 5: unseeded jitter in replay-path retry logic
# makes the 503-retry schedule irreproducible.
JITTER = """
import random

def backoff(attempt):
    return (2 ** attempt) + random.random()
"""


class TestDeterminism:
    def test_replay_path_global_rng_flagged(self):
        findings = run_rule("determinism", JITTER, path="src/repro/replay/retry.py")
        (finding,) = findings
        assert "process-global" in finding.message
        assert "replay/datagen/experiments" in finding.message

    def test_benchmark_noun_preserved(self):
        (finding,) = run_rule(
            "determinism", JITTER, path="benchmarks/bench_retry.py"
        )
        assert "a benchmark" in finding.message

    def test_outside_scoped_trees_not_applicable(self):
        assert run_rule("determinism", JITTER, path="src/repro/optimizer/opt.py") == []
        assert run_rule("determinism", JITTER, path="tests/test_retry.py") == []

    def test_service_tree_in_scope(self):
        # The batch kernels' bitwise contract and the routing ring's
        # interned CRC-32 both depend on deterministic service code.
        (finding,) = run_rule(
            "determinism", JITTER, path="src/repro/service/service.py"
        )
        assert "process-global" in finding.message

    def test_seeded_rng_clean(self):
        source = "import random\nrng = random.Random(7)\n"
        assert run_rule("determinism", source, path="src/repro/datagen/gen.py") == []

    def test_unseeded_constructor_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        (finding,) = run_rule(
            "determinism", source, path="src/repro/experiments/lab.py"
        )
        assert "without an explicit seed" in finding.message

    def test_builtin_hash_flagged(self):
        source = "key = hash('q')\n"
        (finding,) = run_rule("determinism", source, path="src/repro/replay/key.py")
        assert "crc32" in finding.message


# ---------------------------------------------------------------------------
# vectorization


KERNEL_PATH = "src/repro/service/kernels.py"


class TestVectorization:
    def test_float_in_loop_flagged(self):
        source = (
            "def f(xs):\n"
            "    out = []\n"
            "    for x in xs:\n"
            "        out.append(float(x))\n"
            "    return out\n"
        )
        (finding,) = run_rule("vectorization", source, path=KERNEL_PATH)
        assert "float()" in finding.message
        assert "tolist" in finding.message

    def test_scalar_augassign_accumulation_flagged(self):
        source = (
            "def f(xs):\n"
            "    total = 0.0\n"
            "    for x in xs:\n"
            "        total += x\n"
            "    return total\n"
        )
        (finding,) = run_rule("vectorization", source, path=KERNEL_PATH)
        assert "'total'" in finding.message

    def test_scalar_rebind_accumulation_flagged(self):
        source = (
            "def f(xs):\n"
            "    total = 0.0\n"
            "    for x in xs:\n"
            "        total = total + x\n"
            "    return total\n"
        )
        (finding,) = run_rule("vectorization", source, path=KERNEL_PATH)
        assert "'total'" in finding.message

    def test_subscript_writes_stay_legal(self):
        # The bitwise-mandated per-plan ddot loop writes array slots.
        source = (
            "def f(out, gv, mu, plans):\n"
            "    for slot in range(plans):\n"
            "        row = gv[slot]\n"
            "        out[slot] = mu @ row\n"
        )
        assert run_rule("vectorization", source, path=KERNEL_PATH) == []

    def test_float_in_comprehension_is_the_hoist_pattern(self):
        source = (
            "def f(ps):\n"
            "    return [float(erfinv(2 * p - 1)) for p in ps]\n"
        )
        assert run_rule("vectorization", source, path=KERNEL_PATH) == []

    def test_nested_loops_report_once(self):
        source = (
            "def f(xss):\n"
            "    out = []\n"
            "    for xs in xss:\n"
            "        for x in xs:\n"
            "            out.append(float(x))\n"
            "    return out\n"
        )
        findings = run_rule("vectorization", source, path=KERNEL_PATH)
        assert len(findings) == 1

    def test_only_hot_modules_in_scope(self):
        source = "for x in [1]:\n    y = float(x)\n"
        assert run_rule("vectorization", source, path="src/repro/service/service.py") == []
        assert run_rule("vectorization", source, path="benchmarks/bench_x.py") == []

    def test_current_kernels_module_is_clean(self):
        path = REPO_ROOT / "src" / "repro" / "service" / "kernels.py"
        ctx = FileContext(path, root=REPO_ROOT, source=path.read_text())
        check = ALL_CHECKS["vectorization"]
        assert check.applies(ctx)
        assert check.run(ctx) == []


# ---------------------------------------------------------------------------
# error-taxonomy


class TestErrorTaxonomy:
    PATH = "src/repro/api/handlers.py"

    def test_unregistered_raise_flagged(self):
        source = "def f():\n    raise ValueError('bad')\n"
        (finding,) = run_rule("error-taxonomy", source, path=self.PATH)
        assert "ValueError" in finding.message
        assert "ERROR_CODES" in finding.message

    def test_registered_class_clean(self):
        source = "from repro.errors import WireError\n\ndef f():\n    raise WireError('bad')\n"
        assert run_rule("error-taxonomy", source, path=self.PATH) == []

    def test_local_subclass_clean(self):
        source = (
            "from repro.errors import ReproError\n\n"
            "class ApiError(ReproError):\n    pass\n\n"
            "class DeepError(ApiError):\n    pass\n\n"
            "def f():\n    raise DeepError('bad')\n"
        )
        assert run_rule("error-taxonomy", source, path=self.PATH) == []

    def test_control_flow_builtins_allowed(self):
        source = "def f():\n    raise SystemExit(2)\n"
        assert run_rule("error-taxonomy", source, path=self.PATH) == []

    def test_factory_method_not_judged(self):
        source = "def f(self):\n    raise self._structured('oops')\n"
        assert run_rule("error-taxonomy", source, path=self.PATH) == []

    def test_reraise_not_judged(self):
        source = "def f():\n    try:\n        pass\n    except Exception:\n        raise\n"
        assert run_rule("error-taxonomy", source, path=self.PATH) == []

    def test_json_dumps_flagged_outside_wire(self):
        source = "import json\n\ndef f(d):\n    return json.dumps(d)\n"
        (finding,) = run_rule("error-taxonomy", source, path=self.PATH)
        assert "allow_nan" in finding.message

    def test_wire_module_is_the_guard(self):
        source = "import json\n\ndef dumps(d):\n    return json.dumps(d, allow_nan=False)\n"
        assert run_rule("error-taxonomy", source, path="src/repro/api/wire.py") == []

    def test_not_applicable_outside_wire_facing_code(self):
        source = "def f():\n    raise ValueError('bad')\n"
        assert run_rule("error-taxonomy", source, path="src/repro/core/units.py") == []

    def test_serving_package_is_wire_facing(self):
        # The layered serving tier crosses the wire exactly like api/:
        # bare raises and unguarded json.dumps are flagged there too.
        source = "def f():\n    raise ValueError('bad')\n"
        (finding,) = run_rule(
            "error-taxonomy", source, path="src/repro/serving/pool.py"
        )
        assert "ValueError" in finding.message
        dumped = "import json\n\ndef f(d):\n    return json.dumps(d)\n"
        (finding,) = run_rule(
            "error-taxonomy", dumped, path="src/repro/serving/stats.py"
        )
        assert "allow_nan" in finding.message

    def test_serving_error_is_registered(self):
        source = (
            "from repro.errors import ServingError\n\n"
            "def f():\n    raise ServingError('worker died')\n"
        )
        assert (
            run_rule(
                "error-taxonomy", source,
                path="src/repro/serving/pool.py",
            )
            == []
        )


# ---------------------------------------------------------------------------
# output formats & runner integration


class TestFormatsAndRunner:
    def finding(self):
        return Finding(path="src/x.py", line=3, rule="lock-discipline", message="m")

    def test_github_format(self):
        (line,) = _format_github([self.finding()])
        assert line == (
            "::error file=src/x.py,line=3,title=staticcheck lock-discipline::m"
        )

    def test_finding_to_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(self.finding().to_dict()))
        assert payload["rule"] == "lock-discipline"
        assert payload["fingerprint"] == self.finding().fingerprint

    def test_discovery_skips_hidden_and_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "skip.py").write_text("x = 1\n")
        (tmp_path / ".git").mkdir()
        (tmp_path / ".git" / "hook.py").write_text("x = 1\n")
        files = discover_files([tmp_path], tmp_path)
        assert [f.name for f in files] == ["ok.py"]

    def test_jobs_parity(self, tmp_path):
        # Fan-out must not change results: same findings with 1 or 4 workers.
        target = tmp_path / "src" / "repro" / "replay"
        target.mkdir(parents=True)
        (target / "a.py").write_text(JITTER)
        (target / "b.py").write_text(HELD_SLEEP)
        outputs = {}
        for jobs in ("1", "4"):
            result = self.run_tool(tmp_path, "--jobs", jobs, "src")
            assert result.returncode == 1
            outputs[jobs] = [
                line for line in result.stdout.splitlines() if "[" in line
            ]
        assert outputs["1"] == outputs["4"]

    @staticmethod
    def run_tool(root, *argv):
        return subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "staticcheck"),
                "--root",
                str(root),
                "--no-baseline",
                *argv,
            ],
            capture_output=True,
            text=True,
        )

    def test_repo_is_clean_with_committed_baseline(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "staticcheck")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, f"staticcheck findings:\n{result.stdout}"
        assert "0 finding(s)" in result.stdout

    def test_unknown_rule_is_usage_error(self, tmp_path):
        result = self.run_tool(tmp_path, "--select", "nope")
        assert result.returncode == 2

    def test_json_output_artifact(self, tmp_path):
        target = tmp_path / "src" / "repro" / "replay"
        target.mkdir(parents=True)
        (target / "a.py").write_text(JITTER)
        out = tmp_path / "report.json"
        result = self.run_tool(
            tmp_path, "--format", "json", "--json-output", str(out), "src"
        )
        assert result.returncode == 1
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.staticcheck/1"
        assert payload["findings"][0]["rule"] == "determinism"
        assert json.loads(result.stdout) == payload

    def test_pr5_bug_fixtures_fail_the_gate(self, tmp_path):
        """One tree holding all three PR 5 bug shapes exits 1 and names
        each responsible rule."""
        api = tmp_path / "src" / "repro" / "api"
        replay = tmp_path / "src" / "repro" / "replay"
        api.mkdir(parents=True)
        replay.mkdir(parents=True)
        (api / "cache.py").write_text(TORN_STATS)  # torn cache-stat reads
        (api / "http.py").write_text(HELD_SLEEP)  # slot held across backoff
        (replay / "retry.py").write_text(JITTER)  # irreproducible 503 retry
        result = self.run_tool(tmp_path, "src")
        assert result.returncode == 1
        for rule in ("lock-discipline", "blocking-while-locked", "determinism"):
            assert f"[{rule}]" in result.stdout

    def test_baseline_accepts_then_expires(self, tmp_path):
        target = tmp_path / "src" / "repro" / "replay"
        target.mkdir(parents=True)
        fixture = target / "a.py"
        fixture.write_text(JITTER)
        baseline = tmp_path / "baseline.json"

        def run(*argv):
            return subprocess.run(
                [
                    sys.executable,
                    str(REPO_ROOT / "tools" / "staticcheck"),
                    "--root",
                    str(tmp_path),
                    "--baseline",
                    str(baseline),
                    *argv,
                ],
                capture_output=True,
                text=True,
            )

        assert run("src").returncode == 1
        assert run("--write-baseline", "src").returncode == 0
        assert run("src").returncode == 0  # accepted
        fixture.write_text("import random\nrng = random.Random(7)\n")
        result = run("src")  # fixed -> the stale entry must expire
        assert result.returncode == 1
        assert "baseline-expired" in result.stdout


class TestLegacyShimEquivalence:
    def test_shim_and_framework_agree_on_unused_import(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import os\nimport sys\n\nprint(sys.argv)\n")
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "lint_shim_under_test", REPO_ROOT / "tools" / "lint.py"
        )
        lint = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(lint)
        (problem,) = lint.check_file(path)
        assert problem == f"{path}:1: unused import 'os'"
        framework = [
            f
            for f in check_file(path, root=tmp_path)
            if f.rule == "unused-import"
        ]
        assert len(framework) == 1
        assert framework[0].line == 1
