"""Tests for schemas, tables, statistics, indexes, and the catalog."""

import numpy as np
import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage import (
    Column,
    ColumnType,
    Database,
    Schema,
    SortedIndex,
    Table,
    build_column_stats,
    build_table_stats,
)


def make_table(name="t", n=100):
    schema = Schema(
        [
            Column("k", ColumnType.INT),
            Column("v", ColumnType.FLOAT),
            Column("s", ColumnType.STR),
        ]
    )
    rng = np.random.default_rng(0)
    return Table(
        name,
        schema,
        {
            "k": np.arange(n, dtype=np.int64),
            "v": rng.uniform(0, 10, n),
            "s": np.array([f"s{i % 7}" for i in range(n)], dtype="U8"),
        },
    )


class TestSchema:
    def test_lookup(self):
        schema = make_table().schema
        assert schema.column("k").ctype is ColumnType.INT
        assert schema.position("v") == 1
        assert "s" in schema
        assert len(schema) == 3

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            make_table().schema.column("nope")

    def test_duplicate_column(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("has space", ColumnType.INT)

    def test_row_width_positive(self):
        assert make_table().schema.row_width_bytes > 24


class TestTable:
    def test_row_count(self):
        assert make_table(n=50).num_rows == 50

    def test_pages_scale_with_rows(self):
        small = make_table(n=10)
        large = make_table(n=10_000)
        assert large.num_pages > small.num_pages >= 1

    def test_missing_column_data(self):
        schema = Schema([Column("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            Table("bad", schema, {})

    def test_ragged_columns(self):
        schema = Schema([Column("a", ColumnType.INT), Column("b", ColumnType.INT)])
        with pytest.raises(SchemaError):
            Table("bad", schema, {"a": np.arange(3), "b": np.arange(4)})

    def test_extra_columns(self):
        schema = Schema([Column("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            Table("bad", schema, {"a": np.arange(3), "zz": np.arange(3)})

    def test_take_preserves_order(self):
        table = make_table()
        sub = table.take(np.array([5, 2, 9]))
        assert sub.column("k").tolist() == [5, 2, 9]

    def test_rows_iterator(self):
        rows = list(make_table().rows(limit=3))
        assert len(rows) == 3
        assert rows[0]["k"] == 0


class TestColumnStats:
    def test_eq_selectivity_mcv(self):
        values = np.array([1] * 90 + [2] * 10, dtype=np.int64)
        stats = build_column_stats("c", ColumnType.INT, values)
        assert stats.eq_selectivity(1) == pytest.approx(0.9)
        assert stats.eq_selectivity(2) == pytest.approx(0.1)

    def test_range_selectivity_uniform(self):
        values = np.arange(10_000, dtype=np.int64)
        stats = build_column_stats("c", ColumnType.INT, values)
        sel = stats.range_selectivity(low=2500, high=7500)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_range_beyond_domain(self):
        values = np.arange(100, dtype=np.int64)
        stats = build_column_stats("c", ColumnType.INT, values)
        assert stats.range_selectivity(low=1000) == pytest.approx(0.0, abs=1e-9)
        assert stats.range_selectivity(high=1000) == pytest.approx(1.0)

    def test_value_at_quantile_roundtrip(self):
        values = np.arange(10_000, dtype=np.int64)
        stats = build_column_stats("c", ColumnType.INT, values)
        for q in (0.1, 0.5, 0.9):
            value = stats.value_at_quantile(q)
            assert stats.range_selectivity(high=value) == pytest.approx(q, abs=0.05)

    def test_ndv(self):
        values = np.array([1, 1, 2, 3, 3, 3], dtype=np.int64)
        stats = build_column_stats("c", ColumnType.INT, values)
        assert stats.num_distinct == 3

    def test_string_column_no_histogram(self):
        values = np.array(["a", "b", "a"], dtype="U4")
        stats = build_column_stats("c", ColumnType.STR, values)
        assert stats.histogram is None
        assert stats.num_distinct == 2

    def test_empty_column(self):
        stats = build_column_stats("c", ColumnType.INT, np.array([], dtype=np.int64))
        assert stats.num_rows == 0 and stats.num_distinct == 0

    def test_table_stats(self):
        table = make_table()
        stats = build_table_stats(table)
        assert stats.num_rows == table.num_rows
        assert set(stats.columns) == {"k", "v", "s"}


class TestSortedIndex:
    def test_eq_lookup(self):
        table = make_table()
        index = SortedIndex.build(table, "k")
        assert index.lookup_eq(42).tolist() == [42]

    def test_range_lookup(self):
        table = make_table()
        index = SortedIndex.build(table, "k")
        positions = index.lookup_range(10, 14)
        assert sorted(table.column("k")[positions].tolist()) == [10, 11, 12, 13, 14]

    def test_open_ended_ranges(self):
        table = make_table(n=20)
        index = SortedIndex.build(table, "k")
        assert len(index.lookup_range(low=15)) == 5
        assert len(index.lookup_range(high=4)) == 5
        assert len(index.lookup_range()) == 20

    def test_empty_result(self):
        table = make_table(n=10)
        index = SortedIndex.build(table, "k")
        assert len(index.lookup_range(100, 200)) == 0

    def test_duplicate_keys(self):
        schema = Schema([Column("a", ColumnType.INT)])
        table = Table("t", schema, {"a": np.array([5, 5, 5, 1], dtype=np.int64)})
        index = SortedIndex.build(table, "a")
        assert len(index.lookup_eq(5)) == 3

    def test_pages_positive(self):
        index = SortedIndex.build(make_table(), "k")
        assert index.num_pages >= 1


class TestDatabase:
    def test_add_and_lookup(self):
        db = Database("test")
        db.add_table(make_table("a"), indexed_columns=("k",))
        assert db.table("a").num_rows == 100
        assert db.table_stats("a").num_rows == 100
        assert db.has_index("a", "k")
        assert not db.has_index("a", "v")

    def test_duplicate_table(self):
        db = Database("test")
        db.add_table(make_table("a"))
        with pytest.raises(CatalogError):
            db.add_table(make_table("a"))

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Database("test").table("nope")

    def test_index_unknown_column(self):
        db = Database("test")
        db.add_table(make_table("a"))
        with pytest.raises(CatalogError):
            db.create_index("a", "zzz")

    def test_total_rows(self):
        db = Database("test")
        db.add_table(make_table("a", n=10))
        db.add_table(make_table("b", n=20))
        assert db.total_rows == 30
        assert db.table_names == ["a", "b"]
