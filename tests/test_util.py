"""Tests for the vectorized index utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import ensure_rng, expand_ranges, group_ids, join_indices


class TestEnsureRng:
    def test_from_seed(self):
        rng = ensure_rng(7)
        assert isinstance(rng, np.random.Generator)

    def test_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_passthrough(self):
        rng = np.random.default_rng(3)
        assert ensure_rng(rng) is rng

    def test_same_seed_same_stream(self):
        a = ensure_rng(5).integers(0, 100, 10)
        b = ensure_rng(5).integers(0, 100, 10)
        assert np.array_equal(a, b)


class TestExpandRanges:
    def test_simple(self):
        out = expand_ranges(np.array([0, 10]), np.array([2, 3]))
        assert out.tolist() == [0, 1, 10, 11, 12]

    def test_empty_counts(self):
        out = expand_ranges(np.array([5, 7]), np.array([0, 0]))
        assert len(out) == 0

    def test_mixed_zero_counts(self):
        out = expand_ranges(np.array([1, 100, 4]), np.array([1, 0, 2]))
        assert out.tolist() == [1, 4, 5]

    def test_no_rows(self):
        out = expand_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert len(out) == 0


class TestJoinIndices:
    def test_basic_match(self):
        li, ri = join_indices(np.array([1, 2, 3]), np.array([2, 2, 4]))
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(1, 0), (1, 1)}

    def test_no_match(self):
        li, ri = join_indices(np.array([1]), np.array([2]))
        assert len(li) == 0 and len(ri) == 0

    def test_empty_side(self):
        li, ri = join_indices(np.array([], dtype=np.int64), np.array([1, 2]))
        assert len(li) == 0

    def test_duplicates_both_sides(self):
        li, ri = join_indices(np.array([7, 7]), np.array([7, 7, 7]))
        assert len(li) == 6

    def test_string_keys(self):
        li, ri = join_indices(
            np.array(["a", "b"], dtype="U8"), np.array(["b", "a"], dtype="U8")
        )
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(0, 1), (1, 0)}

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.lists(st.integers(0, 8), max_size=30),
        right=st.lists(st.integers(0, 8), max_size=30),
    )
    def test_matches_naive_join(self, left, right):
        """Property: output pairs equal the naive nested-loop equijoin."""
        li, ri = join_indices(np.array(left, dtype=np.int64), np.array(right, dtype=np.int64))
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv
        )
        assert got == expected


class TestGroupIds:
    def test_single_column(self):
        ids, reps = group_ids(np.array([3, 1, 3, 2]))
        assert len(reps) == 3
        # same value -> same id
        assert ids[0] == ids[2]
        assert len(set(ids.tolist())) == 3

    def test_multi_column(self):
        a = np.array([1, 1, 2, 2])
        b = np.array(["x", "y", "x", "x"], dtype="U4")
        ids, reps = group_ids(a, b)
        assert len(reps) == 3
        assert ids[2] == ids[3]
        assert ids[0] != ids[1]

    def test_empty(self):
        ids, reps = group_ids(np.array([], dtype=np.int64))
        assert len(ids) == 0 and len(reps) == 0

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            group_ids()

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.integers(-5, 5), min_size=1, max_size=40))
    def test_ids_are_dense_and_consistent(self, values):
        array = np.array(values, dtype=np.int64)
        ids, reps = group_ids(array)
        # dense: ids cover 0..k-1
        assert set(ids.tolist()) == set(range(len(reps)))
        # consistent: equal values get equal ids
        for i in range(len(values)):
            for j in range(len(values)):
                assert (values[i] == values[j]) == (ids[i] == ids[j])
