"""Monte-Carlo validation of the distribution-parameter assembly.

Builds tiny synthetic plans with hand-chosen cost functions, unit
distributions, and selectivity distributions, then checks E[t_q] and
Var[t_q] from Algorithm 3 against direct simulation of
t_q = sum_c c * g_c(X).
"""

import numpy as np
import pytest

from repro.calibration.calibrator import CalibratedUnits
from repro.core.variance import VarianceOptions, assemble_distribution_parameters
from repro.costfuncs.families import C1, C2, C5
from repro.costfuncs.fitting import FittedCostFunction, OperatorCostFunctions
from repro.mathstats import NormalDistribution
from repro.plan import HashJoinNode, SeqScanNode, assign_op_ids
from repro.sampling.estimator import NodeSelectivity, SamplingEstimate

# Monte-Carlo validation is the slow tier: deselected from tier-1 runs
# by pytest.ini, exercised in CI's scheduled/manual `-m slow` pass.
pytestmark = pytest.mark.slow


class _PlanStub:
    """assemble_distribution_parameters only needs .root."""

    def __init__(self, root):
        self.root = root


def make_units(ct=(0.01, 1e-6), cs=(1.0, 0.01)):
    zero = NormalDistribution(1e-9, 0.0)
    return CalibratedUnits(
        distributions={
            "ct": NormalDistribution(*ct),
            "cs": NormalDistribution(*cs),
            "cr": zero,
            "ci": zero,
            "co": zero,
        },
        samples={},
    )


def selectivity(op_id, mean, variance, alias, source="sample"):
    return NodeSelectivity(
        op_id=op_id,
        mean=mean,
        variance=variance,
        var_components={alias: variance},
        leaf_aliases=(alias,),
        sample_sizes={alias: 1000},
        source=source,
    )


def build_join_plan():
    """Scan a (op 0), scan b (op 1), hash join (op 2)."""
    left = SeqScanNode(table="a", alias="a")
    right = SeqScanNode(table="b", alias="b")
    join = HashJoinNode(keys=[("a.k", "b.k")], children=[left, right])
    return assign_op_ids(join)


class TestIndependentVariables:
    """With independent selectivities everything is exact — MC must agree."""

    X0 = (0.3, 0.001)
    X1 = (0.5, 0.002)
    COEFFS = np.array([100.0, 200.0, 5.0])  # ct: b0*xl + b1*xr + b2
    SCAN_CONST = 50.0  # cs for scan a

    def assemble(self, options=VarianceOptions()):
        root = build_join_plan()
        estimate = SamplingEstimate(
            per_node={
                0: selectivity(0, *self.X0, "a"),
                1: selectivity(1, *self.X1, "b"),
                2: selectivity(2, 0.1, 0.0, "a", source="optimizer"),
            }
        )
        fitted = {
            0: OperatorCostFunctions(
                0,
                {
                    "cs": FittedCostFunction(
                        unit="cs",
                        family=C1,
                        coefficients=np.array([self.SCAN_CONST]),
                        var_bindings={},
                    )
                },
            ),
            1: OperatorCostFunctions(1, {}),
            2: OperatorCostFunctions(
                2,
                {
                    "ct": FittedCostFunction(
                        unit="ct",
                        family=C5,
                        coefficients=self.COEFFS,
                        var_bindings={"xl": 0, "xr": 1},
                    )
                },
            ),
        }
        units = make_units()
        return (
            assemble_distribution_parameters(
                _PlanStub(root), estimate, fitted, units, options
            ),
            units,
        )

    def simulate(self, n=400_000, unit_variance=True, sel_variance=True):
        rng = np.random.default_rng(0)
        x0 = rng.normal(self.X0[0], np.sqrt(self.X0[1]) if sel_variance else 0.0, n)
        x1 = rng.normal(self.X1[0], np.sqrt(self.X1[1]) if sel_variance else 0.0, n)
        ct = rng.normal(0.01, 1e-3 if unit_variance else 0.0, n)
        cs = rng.normal(1.0, 0.1 if unit_variance else 0.0, n)
        g_ct = self.COEFFS[0] * x0 + self.COEFFS[1] * x1 + self.COEFFS[2]
        t = ct * g_ct + cs * self.SCAN_CONST
        return float(t.mean()), float(t.var())

    def test_mean_matches_mc(self):
        breakdown, _ = self.assemble()
        mc_mean, _ = self.simulate()
        assert breakdown.mean == pytest.approx(mc_mean, rel=0.01)

    def test_variance_matches_mc(self):
        breakdown, _ = self.assemble()
        _, mc_var = self.simulate()
        assert breakdown.variance == pytest.approx(mc_var, rel=0.03)

    def test_no_var_c_matches_mc(self):
        breakdown, _ = self.assemble(
            VarianceOptions(include_cost_unit_variance=False)
        )
        _, mc_var = self.simulate(unit_variance=False)
        assert breakdown.variance == pytest.approx(mc_var, rel=0.03)

    def test_no_var_x_matches_mc(self):
        breakdown, _ = self.assemble(
            VarianceOptions(include_selectivity_variance=False)
        )
        _, mc_var = self.simulate(sel_variance=False)
        assert breakdown.variance == pytest.approx(mc_var, rel=0.03)

    def test_mean_analytic(self):
        breakdown, _ = self.assemble()
        expected = 0.01 * (100 * 0.3 + 200 * 0.5 + 5) + 1.0 * 50.0
        assert breakdown.mean == pytest.approx(expected, rel=1e-9)


class TestCorrelatedVariables:
    """Nested operators: the assembled variance must be a conservative
    upper bound on simulation with any admissible correlation.

    The synthetic selectivity distributions are chosen *consistent with
    the sampling estimator*: variance = rho (1 - rho) / n for the scan,
    and at most that for the join — otherwise the Theorem 8 bound B3
    (which only sees rho and n) would legitimately under-cap them.
    """

    N = 1000
    X0 = (0.4, 0.4 * 0.6 / 1000)  # scan: exact Bernoulli variance
    X2 = (0.2, 0.00016)  # join: half the Bernoulli maximum, split evenly

    def assemble(self):
        root = build_join_plan()
        estimate = SamplingEstimate(
            per_node={
                0: selectivity(0, *self.X0, "a"),
                1: selectivity(1, 0.5, 0.0, "b", source="optimizer"),
                # the join's own selectivity: correlated with op 0
                2: NodeSelectivity(
                    op_id=2,
                    mean=self.X2[0],
                    variance=self.X2[1],
                    var_components={"a": self.X2[1] / 2, "b": self.X2[1] / 2},
                    leaf_aliases=("a", "b"),
                    sample_sizes={"a": self.N, "b": self.N},
                    source="sample",
                ),
            }
        )
        fitted = {
            0: OperatorCostFunctions(0, {}),
            1: OperatorCostFunctions(1, {}),
            2: OperatorCostFunctions(
                2,
                {
                    "ct": FittedCostFunction(
                        unit="ct",
                        family=C5,
                        coefficients=np.array([100.0, 0.0, 0.0]),
                        var_bindings={"xl": 0, "xr": 1},
                    ),
                    "cs": FittedCostFunction(
                        unit="cs",
                        family=C2,
                        coefficients=np.array([30.0, 0.0]),
                        var_bindings={"x": 2},
                    ),
                },
            ),
        }
        units = make_units()
        return assemble_distribution_parameters(
            _PlanStub(root), estimate, fitted, units
        )

    def simulate(self, correlation, n=400_000):
        rng = np.random.default_rng(1)
        z0 = rng.normal(size=n)
        z2 = correlation * z0 + np.sqrt(1 - correlation**2) * rng.normal(size=n)
        x0 = self.X0[0] + np.sqrt(self.X0[1]) * z0
        x2 = self.X2[0] + np.sqrt(self.X2[1]) * z2
        ct = rng.normal(0.01, 1e-3, n)
        cs = rng.normal(1.0, 0.1, n)
        t = ct * (100.0 * x0) + cs * (30.0 * x2)
        return float(t.var())

    # Theorem 7 bounds the covariance induced by *shared samples*: at most
    # B1 = sqrt(restricted_u * restricted_v) = sqrt(0.00024 * 0.00008),
    # i.e. a correlation cap of B1 / sqrt(var_u var_v) ~= 0.707. Arbitrary
    # copulas beyond that cannot arise from the sampling estimator.
    @pytest.mark.parametrize("correlation", [0.0, 0.3, 0.6, 0.707])
    def test_assembled_variance_is_upper_bound(self, correlation):
        breakdown = self.assemble()
        mc_var = self.simulate(correlation)
        # Algorithm 3 adds |Cov| upper bounds, so it must dominate the MC
        # variance for every admissible correlation level.
        assert breakdown.variance >= mc_var * 0.97

    def test_bounded_term_is_positive(self):
        breakdown = self.assemble()
        assert breakdown.bounded_covariance_term > 0.0

    def test_no_cov_matches_independent_mc(self):
        root = build_join_plan()
        breakdown = self.assemble()
        # With cross covariances off, the prediction should match the
        # independent (correlation = 0) simulation.
        estimate_var = breakdown.variance - breakdown.bounded_covariance_term
        mc_var = self.simulate(correlation=0.0)
        assert estimate_var == pytest.approx(mc_var, rel=0.05)
