"""Tests for the MICRO / SELJOIN / TPCH workload generators."""

import numpy as np
import pytest

from repro.executor import Executor
from repro.optimizer import Optimizer
from repro.sql import parse_query
from repro.workloads import (
    TPCH_TEMPLATES,
    micro_join_queries,
    micro_scan_queries,
    micro_workload,
    seljoin_workload,
    template_by_number,
    tpch_workload,
    workload_by_name,
)


class TestMicro:
    def test_scan_queries_cover_selectivity_space(self, tpch_db, optimizer, executor):
        queries = micro_scan_queries(tpch_db, per_table=6)
        orders_queries = [q for q in queries if "FROM orders" in q]
        selectivities = []
        for sql in orders_queries:
            planned = optimizer.plan_sql(sql)
            result = executor.execute(planned)
            selectivities.append(
                result.num_rows / tpch_db.table("orders").num_rows
            )
        assert selectivities == sorted(selectivities)
        assert selectivities[0] < 0.25
        assert selectivities[-1] > 0.75

    def test_join_queries_grid_size(self, tpch_db):
        queries = micro_join_queries(tpch_db, grid=3)
        assert len(queries) == 3 * 3 * 3  # three join pairs

    def test_workload_subsampling(self, tpch_db):
        full = micro_workload(tpch_db)
        subset = micro_workload(tpch_db, num_queries=10, seed=1)
        assert len(subset) == 10
        assert set(subset) <= set(full)

    def test_all_micro_queries_parse(self, tpch_db):
        for sql in micro_workload(tpch_db):
            parse_query(sql)


class TestTemplates:
    def test_fourteen_templates(self):
        numbers = sorted(t.number for t in TPCH_TEMPLATES)
        assert numbers == [1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 18, 19]

    def test_lookup(self):
        assert template_by_number(5).number == 5
        with pytest.raises(KeyError):
            template_by_number(2)

    def test_instances_parse(self):
        rng = np.random.default_rng(0)
        for template in TPCH_TEMPLATES:
            parse_query(template.instantiate(rng))
            parse_query(template.seljoin(rng))

    def test_seljoin_has_no_aggregates(self):
        rng = np.random.default_rng(0)
        for template in TPCH_TEMPLATES:
            query = parse_query(template.seljoin(rng))
            assert query.select_star
            assert not query.has_aggregates

    def test_tpch_instances_have_aggregates(self):
        rng = np.random.default_rng(0)
        for template in TPCH_TEMPLATES:
            query = parse_query(template.instantiate(rng))
            assert query.has_aggregates

    def test_parameters_vary(self):
        rng = np.random.default_rng(0)
        template = template_by_number(6)
        instances = {template.instantiate(rng) for _ in range(10)}
        assert len(instances) > 3

    def test_q7_self_join_aliases(self):
        rng = np.random.default_rng(0)
        query = parse_query(template_by_number(7).instantiate(rng))
        aliases = [t.effective_name for t in query.tables]
        assert "n1" in aliases and "n2" in aliases

    @pytest.mark.parametrize("number", [1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 18, 19])
    def test_every_template_plans_and_executes(self, tpch_db, number):
        rng = np.random.default_rng(number)
        sql = template_by_number(number).instantiate(rng)
        planned = Optimizer(tpch_db).plan_sql(sql)
        result = Executor(tpch_db).execute(planned)
        assert result.num_rows >= 0


class TestWorkloadDispatch:
    def test_counts(self, tpch_db):
        assert len(seljoin_workload(num_queries=20)) == 20
        assert len(tpch_workload(num_queries=17)) == 17
        assert len(workload_by_name("MICRO", tpch_db, 12)) == 12

    def test_unknown_name(self, tpch_db):
        with pytest.raises(ValueError):
            workload_by_name("NOPE", tpch_db, 5)

    def test_deterministic(self, tpch_db):
        a = tpch_workload(num_queries=10, seed=5)
        b = tpch_workload(num_queries=10, seed=5)
        assert a == b
        c = tpch_workload(num_queries=10, seed=6)
        assert a != c
