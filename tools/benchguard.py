"""Regression guard: diff fresh bench results against committed baselines.

Usage::

    python tools/benchguard.py [--results DIR] [--baselines DIR]
                               [--tier quick|full] [--update]
                               [--strict-timings] [--scenario NAME ...]

Reads ``BENCH_<scenario>.json`` artifacts produced by ``repro bench``
from ``--results`` (default: cwd) and compares them against the
baselines committed under ``--baselines`` (default:
``benchmarks/baselines/<tier>``). Exit status 1 on any regression.

Tolerance policy, per metric kind (see ``repro.benchreport.result``):

* ``fidelity`` — two-sided, tight: deterministic paper-shape numbers
  may drift only within ``max(abs_tol, rel_tol * |baseline|)``.
* ``ratio`` — one-sided, loose: a speedup may fall at most
  ``ratio_slack`` below the baseline (improvements always pass), and
  must clear its hard ``floor`` when it declares one.
* ``timing`` — one-sided, loosest: a wall time may grow at most
  ``timing_slack`` above the baseline, and is only compared at all
  when the fresh and baseline environment fingerprints are comparable
  (same machine class / CPU count / python); cross-machine timing
  diffs are noise, not regressions.

``--update`` refreshes the baselines from the fresh results instead of
comparing (use after an intentional perf or fidelity change, and commit
the diff).
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchreport import BenchResult, fingerprints_comparable  # noqa: E402

SUMMARY_NAME = "BENCH_summary.json"


@dataclass(frozen=True)
class TolerancePolicy:
    """Per-kind tolerance bands. Fidelity tight, timings loose."""

    fidelity_rel: float = 0.02
    fidelity_abs: float = 0.02
    # Speedup ratios swing ~2x run-to-run on busy 1-core runners; the
    # slack tolerates that while a collapse to ~1x (the real failure
    # mode) still lands far below baseline * (1 - slack). Scenarios pin
    # the collapse case with hard `floor`s, which ignore the slack.
    ratio_slack: float = 0.6
    timing_slack: float = 1.0
    # Absolute grace on timings: millisecond-scale baselines are
    # jitter-dominated, so a pure relative band flags noise (a 4 ms
    # calibration doubling to 8 ms is not a regression worth a red CI).
    timing_abs: float = 0.05
    #: Compare timings even across differing environment fingerprints.
    strict_timings: bool = False


@dataclass(frozen=True)
class Finding:
    """One comparison outcome."""

    scenario: str
    metric: str
    message: str
    regression: bool

    def __str__(self) -> str:
        tag = "REGRESSION" if self.regression else "note"
        where = f"{self.scenario}.{self.metric}" if self.metric else self.scenario
        return f"{tag:>10}  {where}: {self.message}"


def load_results(directory: Path) -> dict[str, BenchResult]:
    """All ``BENCH_<scenario>.json`` records in ``directory``, by name."""
    results = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        result = BenchResult.read(path)
        results[result.scenario] = result
    return results


def _floor_finding(scenario, name, fresh, base=None) -> Finding | None:
    """Hard floors bind with or without a baseline (NaN never clears one)."""
    floor = fresh.floor
    if floor is None and base is not None:
        floor = base.floor
    if floor is not None and not (fresh.value >= floor):
        return Finding(
            scenario, name,
            f"{fresh.value:.4g} below its hard floor {floor:.4g}", True,
        )
    return None


def _compare_metric(scenario, name, fresh, base, timings_comparable,
                    policy: TolerancePolicy) -> list[Finding]:
    findings = []
    if fresh.kind != base.kind:
        findings.append(Finding(
            scenario, name, f"kind changed {base.kind} -> {fresh.kind} "
            "(refresh baselines with --update)", True,
        ))
        return findings

    floored = _floor_finding(scenario, name, fresh, base)
    if floored is not None:
        findings.append(floored)

    # Ordered float comparisons are all False for NaN, so the band
    # checks below would wave a metric that degraded to NaN/inf
    # straight through — the exact breakage class (estimator suddenly
    # returning garbage everywhere) the guard exists to catch.
    if not math.isfinite(fresh.value):
        if math.isfinite(base.value):
            findings.append(Finding(
                scenario, name,
                f"became non-finite: {base.value:.4g} -> {fresh.value}", True,
            ))
        return findings
    if not math.isfinite(base.value):
        findings.append(Finding(
            scenario, name,
            f"baseline is non-finite ({base.value}) but the fresh value "
            f"is {fresh.value:.4g} — refresh baselines with --update", False,
        ))
        return findings

    if base.kind == "fidelity":
        band = max(policy.fidelity_abs, policy.fidelity_rel * abs(base.value))
        drift = abs(fresh.value - base.value)
        if drift > band:
            findings.append(Finding(
                scenario, name,
                f"fidelity drifted {base.value:.4g} -> {fresh.value:.4g} "
                f"(|delta| {drift:.4g} > band {band:.4g})", True,
            ))
    elif base.kind == "ratio":
        allowed = base.value * (1.0 - policy.ratio_slack)
        if fresh.value < allowed:
            findings.append(Finding(
                scenario, name,
                f"ratio fell {base.value:.4g} -> {fresh.value:.4g} "
                f"(below {allowed:.4g} = baseline - {policy.ratio_slack:.0%})",
                True,
            ))
    elif base.kind == "timing":
        if not timings_comparable and not policy.strict_timings:
            findings.append(Finding(
                scenario, name,
                "timing skipped: environment fingerprint differs from the "
                "baseline's (run with --strict-timings to force)", False,
            ))
        else:
            allowed = base.value * (1.0 + policy.timing_slack) + policy.timing_abs
            if fresh.value > allowed:
                findings.append(Finding(
                    scenario, name,
                    f"timing grew {base.value:.4g}s -> {fresh.value:.4g}s "
                    f"(above {allowed:.4g}s = baseline + "
                    f"{policy.timing_slack:.0%})", True,
                ))
    return findings


def compare(fresh: dict[str, BenchResult], baseline: dict[str, BenchResult],
            policy: TolerancePolicy | None = None) -> list[Finding]:
    """Every baseline scenario/metric checked against the fresh run."""
    policy = policy or TolerancePolicy()
    findings: list[Finding] = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            findings.append(Finding(
                name, "", "scenario missing from the fresh results", True,
            ))
            continue
        got = fresh[name]
        if not got.ok:
            findings.append(Finding(
                name, "", f"scenario failed:\n{got.error}", True,
            ))
            continue
        if got.tier != base.tier:
            findings.append(Finding(
                name, "", f"tier mismatch: fresh {got.tier!r} vs baseline "
                f"{base.tier!r} — compared anyway, refresh the baselines",
                False,
            ))
        timings_comparable = fingerprints_comparable(
            got.environment, base.environment
        )
        for metric_name in sorted(base.metrics):
            if metric_name not in got.metrics:
                findings.append(Finding(
                    name, metric_name, "metric missing from the fresh result",
                    True,
                ))
                continue
            findings.extend(_compare_metric(
                name, metric_name, got.metrics[metric_name],
                base.metrics[metric_name], timings_comparable, policy,
            ))
        for metric_name in sorted(set(got.metrics) - set(base.metrics)):
            findings.append(Finding(
                name, metric_name,
                "new metric without a baseline (add it with --update)", False,
            ))
            floored = _floor_finding(name, metric_name, got.metrics[metric_name])
            if floored is not None:
                findings.append(floored)
    for name in sorted(set(fresh) - set(baseline)):
        findings.append(Finding(
            name, "", "new scenario without a baseline (add it with --update)",
            False,
        ))
        got = fresh[name]
        if not got.ok:
            findings.append(Finding(
                name, "", f"new scenario failed:\n{got.error}", True,
            ))
            continue
        for metric_name in sorted(got.metrics):
            floored = _floor_finding(name, metric_name, got.metrics[metric_name])
            if floored is not None:
                findings.append(floored)
    return findings


def update_baselines(fresh: dict[str, BenchResult], directory: Path) -> int:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for result in fresh.values():
        result.write(directory)
    return len(fresh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", default=".", help="directory with fresh BENCH_*.json"
    )
    parser.add_argument(
        "--baselines", default=None,
        help="baseline directory (default: benchmarks/baselines/<tier>)",
    )
    parser.add_argument("--tier", choices=("quick", "full"), default="quick")
    parser.add_argument(
        "--scenario", action="append", default=None,
        help="restrict the diff to these scenarios (repeatable)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="refresh the baselines from the fresh results instead of diffing",
    )
    parser.add_argument("--strict-timings", action="store_true")
    parser.add_argument("--fidelity-rel", type=float, default=None)
    parser.add_argument("--fidelity-abs", type=float, default=None)
    parser.add_argument("--ratio-slack", type=float, default=None)
    parser.add_argument("--timing-slack", type=float, default=None)
    args = parser.parse_args(argv)

    baselines_dir = Path(
        args.baselines
        if args.baselines
        else REPO_ROOT / "benchmarks" / "baselines" / args.tier
    )
    fresh = load_results(Path(args.results))
    if args.scenario:
        fresh = {k: v for k, v in fresh.items() if k in set(args.scenario)}
    if not fresh:
        print(f"benchguard: no fresh BENCH_*.json found in {args.results}")
        return 1

    if args.update:
        count = update_baselines(fresh, baselines_dir)
        print(f"benchguard: wrote {count} baselines to {baselines_dir}")
        return 0

    if not baselines_dir.is_dir():
        print(
            f"benchguard: no baselines at {baselines_dir} — seed them with "
            "--update"
        )
        return 1
    baseline = load_results(baselines_dir)
    if args.scenario:
        baseline = {k: v for k, v in baseline.items() if k in set(args.scenario)}

    defaults = TolerancePolicy()
    policy = TolerancePolicy(
        fidelity_rel=args.fidelity_rel if args.fidelity_rel is not None
        else defaults.fidelity_rel,
        fidelity_abs=args.fidelity_abs if args.fidelity_abs is not None
        else defaults.fidelity_abs,
        ratio_slack=args.ratio_slack if args.ratio_slack is not None
        else defaults.ratio_slack,
        timing_slack=args.timing_slack if args.timing_slack is not None
        else defaults.timing_slack,
        strict_timings=args.strict_timings,
    )
    findings = compare(fresh, baseline, policy)
    regressions = [f for f in findings if f.regression]
    for finding in findings:
        print(finding)
    checked = sum(len(b.metrics) for b in baseline.values())
    print(
        f"benchguard: {len(baseline)} scenarios, {checked} metrics checked, "
        f"{len(regressions)} regressions"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
