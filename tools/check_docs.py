"""Documentation link and example checker.

Markdown rots in two silent ways: intra-repo links break when files
move, and fenced code examples drift until they would not even parse.
This checker walks ``README.md`` plus every ``docs/**/*.md`` and fails
CI on either:

* **links** — every relative markdown link target (``[text](path)``,
  anchors stripped) must exist on disk, resolved against the linking
  file's directory. External schemes (http/https/mailto) and pure
  in-page anchors are skipped.
* **python blocks** — every fenced block tagged ``python`` (or ``py``)
  must at least :func:`compile`. Blocks tagged ``console``/``json``/
  etc. are documentation of *output* and are not compiled.

This is a syntax gate, not an execution gate: examples are not run
(many build sessions or bind sockets), but a doc block that cannot
compile is always a bug.

Usage: ``python tools/check_docs.py [paths...]`` (defaults to README.md
and docs/). Exit status 1 when problems were found. Wired into
``make ci`` and ``.github/workflows/ci.yml``; pinned by
``tests/test_check_docs.py`` and ``tests/test_ci_workflow.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DEFAULT_PATHS = ("README.md", "docs")

#: Inline markdown links: [text](target). Images (![alt](target)) match
#: too via the optional leading "!".
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks with their info string. Tolerates indentation
#: (fences inside list items) and attribute-carrying info strings
#: (```python title="x") — a stricter pattern would desync the
#: open/close toggle and silently invert link checking.
_FENCE = re.compile(r"^\s*```+\s*(\S*)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: Info strings whose fenced blocks must compile as Python.
_PYTHON_INFOS = ("python", "py", "python3")


def iter_markdown_files(roots: list[Path]) -> list[Path]:
    """Every markdown file under ``roots`` (files listed verbatim)."""
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
    return files


def check_links(path: Path, text: str) -> list[str]:
    """Flag relative link targets that do not resolve to a file."""
    problems = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue  # code samples legitimately contain [x](y)-like text
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path}:{lineno}: broken link {target!r} "
                    f"(resolved to {resolved})"
                )
    return problems


def python_blocks(text: str) -> list[tuple[int, str]]:
    """``(starting line, source)`` of every fenced python block."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    inside = False
    info = ""
    start = 0
    body: list[str] = []
    for lineno, line in enumerate(lines, start=1):
        fence = _FENCE.match(line)
        if fence and not inside:
            inside = True
            info = fence.group(1).lower()
            start = lineno + 1
            body = []
        elif fence and inside:
            inside = False
            if info in _PYTHON_INFOS:
                blocks.append((start, "\n".join(body)))
        elif inside:
            body.append(line)
    return blocks


def check_python_blocks(path: Path, text: str) -> list[str]:
    """Flag fenced python blocks that fail to compile."""
    problems = []
    for start, source in python_blocks(text):
        try:
            compile(source, f"{path}:{start}", "exec")
        except SyntaxError as error:
            line = start + (error.lineno or 1) - 1
            problems.append(
                f"{path}:{line}: python doc block does not compile: "
                f"{error.msg}"
            )
    return problems


def check_file(path: Path) -> list[str]:
    """All problems of one markdown file."""
    text = path.read_text()
    return check_links(path, text) + check_python_blocks(path, text)


def main(argv: list[str]) -> int:
    """CLI entry: check the given paths (default README.md + docs/)."""
    roots = [Path(arg) for arg in argv] if argv else [
        Path(name) for name in DEFAULT_PATHS
    ]
    missing_roots = [str(r) for r in roots if not r.exists()]
    problems = [f"{name}: path does not exist" for name in missing_roots]
    files = iter_markdown_files([r for r in roots if r.exists()])
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"check_docs: {len(files)} files checked, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
