"""HTTP serving smoke for CI: boot ``repro serve``, drive it, shut down.

Three stages, each booting ``python -m repro serve`` on an **ephemeral
port** as a child process and parsing the bound address from the
startup "listening on" line.

Stage 1 — single worker (the pre-fork-identical path):

* ``GET /v1/healthz`` — must report ``status: ok`` and the exact wire
  ``schema_version`` this checkout speaks;
* ``POST /v1/predict`` — one TPC-H query must come back with a positive
  mean, a declared ``schema_version``, and interval bounds;
* a malformed statement must be a structured 400 (``sql-parse``).

Stage 2 — cross-version interop (the v2 compatibility contract):

* a ``schema_version: 1`` predict must come back stamped v1 with no
  v2-only keys; unversioned ``GET /v1/stats`` stays the flat v1 report
  while ``?schema_version=2`` opts into the sectioned form;
* ``POST /v1/observe`` must round-trip and surface in v2 stats;
* a foreign version must be a structured 400 (``schema-version``).

Stage 3 — ``--workers 2`` (the pre-fork pool, ``docs/serving.md``):

* healthz must answer from **each** worker (``worker`` 0 and 1 both
  observed) with ``status: ok`` and the same ``schema_version``;
* a prediction must round-trip through the sharded pool.

Stage 4 — ``--workers 2 --scheduler edf-slack`` (the uncertainty-aware
admission tier, ``docs/scheduling.md``):

* the listening line must advertise the scheduler;
* a deadline-stamped v2 predict (``deadline_ms``/``priority``) must
  round-trip through the deferring gate unchanged;
* v2 stats must carry the ``scheduler`` section naming the policy.

Exit status 0 on success; any failure kills the children and exits 1.
Wired into ``.github/workflows/ci.yml`` and ``make ci`` (pinned by
``tests/test_ci_workflow.py``).

Usage: ``python tools/http_smoke.py [--scale 0.01] [--timeout 180]``
"""

from __future__ import annotations

import argparse
import os
import queue
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.client import ApiError, HttpClient  # noqa: E402
from repro.api.wire import SCHEMA_VERSION, Observation  # noqa: E402

SQL = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 100000"
_LISTENING = re.compile(r"listening on (http://[0-9.]+:\d+)")


def _spawn(
    scale: float, workers: int = 1, scheduler: str | None = None
) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--scale", str(scale),
    ]
    if workers != 1:
        command += ["--workers", str(workers)]
    if scheduler is not None:
        command += ["--scheduler", scheduler]
    return subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def _wait_for_url(
    proc: subprocess.Popen, deadline: float, expect: str | None = None
) -> str:
    # readline() on the child's pipe blocks with no timeout, so a hung
    # server would stall this stage until the CI job-level timeout. A
    # daemon thread feeds a queue; the main thread polls it against the
    # deadline and can give up while the reader is still blocked.
    lines: list[str] = []
    feed: queue.Queue[str] = queue.Queue()
    reader = threading.Thread(
        target=lambda: [feed.put(line) for line in proc.stdout],
        daemon=True,
    )
    reader.start()
    while time.monotonic() < deadline:
        try:
            line = feed.get(timeout=min(1.0, max(deadline - time.monotonic(), 0.01)))
        except queue.Empty:
            if proc.poll() is not None:
                raise RuntimeError(
                    "repro serve exited before listening:\n" + "".join(lines)
                )
            continue
        lines.append(line)
        match = _LISTENING.search(line)
        if match:
            if expect is not None and expect not in line:
                raise AssertionError(
                    f"listening line missing {expect!r}: {line!r}"
                )
            return match.group(1)
    raise RuntimeError(
        "timed out waiting for the listening line:\n" + "".join(lines)
    )


def _stop(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()


def _single_worker_stage(scale: float, timeout: float) -> None:
    proc = _spawn(scale)
    try:
        url = _wait_for_url(proc, time.monotonic() + timeout)
        client = HttpClient(url, timeout=timeout)

        health = client.healthz()
        assert health["status"] == "ok", health
        assert health["schema_version"] == SCHEMA_VERSION, health

        body = client.request_json("POST", "/v1/predict", {"sql": SQL})
        assert body["schema_version"] == SCHEMA_VERSION, body
        (result,) = body["results"]
        assert result["mean"] > 0, result
        assert result["intervals"], result

        try:
            client.predict("SELEC nope")
        except ApiError as error:
            assert error.status == 400, error
            assert error.code == "sql-parse", error
        else:
            raise AssertionError("malformed SQL did not produce a 400")

        print(
            f"http smoke ok: {url} schema v{health['schema_version']}, "
            f"mean {result['mean']:.4f}s"
        )
    finally:
        _stop(proc)


def _cross_version_stage(scale: float, timeout: float) -> None:
    """A deployed v1 client interoperates unmodified with the v2 server."""
    proc = _spawn(scale)
    try:
        url = _wait_for_url(proc, time.monotonic() + timeout)
        client = HttpClient(url, timeout=timeout)

        # v1-declared predict: answered in v1 shape (no feedback key).
        body = client.request_json(
            "POST", "/v1/predict", {"sql": SQL, "schema_version": 1}
        )
        assert body["schema_version"] == 1, body
        assert "feedback" not in body, body
        (result,) = body["results"]
        assert result["mean"] > 0, result

        # Unversioned GET /v1/stats stays the flat v1 report a deployed
        # monitor expects; ?schema_version=2 opts into the sectioned form.
        v1_stats = client.request_json("GET", "/v1/stats")
        assert v1_stats["schema_version"] == 1, v1_stats
        assert "feedback" not in v1_stats, v1_stats
        v2_stats = client.request_json("GET", "/v1/stats?schema_version=2")
        assert v2_stats["schema_version"] == SCHEMA_VERSION, v2_stats
        assert "feedback" in v2_stats, v2_stats

        # The v2 observation loop round-trips over the wire.
        ack = client.observe(
            Observation(sql=SQL, actual_seconds=result["mean"])
        )
        assert ack.observations == 1, ack
        after = client.request_json("GET", "/v1/stats?schema_version=2")
        assert after["feedback"]["observations"] == 1, after

        # Foreign versions are rejected with the structured code.
        try:
            client.request_json(
                "POST", "/v1/predict", {"sql": SQL, "schema_version": 99}
            )
        except ApiError as error:
            assert error.status == 400, error
            assert error.code == "schema-version", error
        else:
            raise AssertionError("schema_version 99 did not produce a 400")

        print(f"http smoke ok: {url} v1 interop + observe round-trip")
    finally:
        _stop(proc)


def _worker_pool_stage(scale: float, timeout: float) -> None:
    proc = _spawn(scale, workers=2)
    try:
        url = _wait_for_url(proc, time.monotonic() + timeout)
        client = HttpClient(url, timeout=timeout)

        # The kernel picks which worker accepts each fresh connection;
        # probe until both have answered (or the deadline passes).
        seen: dict[int, dict] = {}
        deadline = time.monotonic() + timeout
        while set(seen) != {0, 1} and time.monotonic() < deadline:
            health = client.healthz()
            seen[health["worker"]] = health
        assert set(seen) == {0, 1}, f"workers seen: {sorted(seen)}"
        for worker, health in sorted(seen.items()):
            assert health["status"] == "ok", (worker, health)
            assert health["schema_version"] == SCHEMA_VERSION, (worker, health)
            assert health["workers"] == 2, (worker, health)

        body = client.request_json("POST", "/v1/predict", {"sql": SQL})
        assert body["schema_version"] == SCHEMA_VERSION, body
        (result,) = body["results"]
        assert result["mean"] > 0, result

        print(
            f"http smoke ok: {url} workers {sorted(seen)} "
            f"schema v{SCHEMA_VERSION}, mean {result['mean']:.4f}s"
        )
    finally:
        _stop(proc)


def _scheduler_stage(scale: float, timeout: float) -> None:
    """A deadline-stamped v2 request through the deferring admission tier."""
    proc = _spawn(scale, workers=2, scheduler="edf-slack")
    try:
        url = _wait_for_url(
            proc, time.monotonic() + timeout, expect="scheduler edf-slack"
        )
        client = HttpClient(url, timeout=timeout)

        body = client.request_json(
            "POST",
            "/v1/predict",
            {
                "sql": SQL,
                "schema_version": SCHEMA_VERSION,
                "deadline_ms": 500,
                "priority": 1,
            },
        )
        assert body["schema_version"] == SCHEMA_VERSION, body
        (result,) = body["results"]
        assert result["mean"] > 0, result

        stats = client.request_json("GET", "/v1/stats?schema_version=2")
        scheduler = stats.get("scheduler")
        assert scheduler is not None, stats
        assert scheduler["policy"] == "edf-slack", scheduler

        print(
            f"http smoke ok: {url} scheduler {scheduler['policy']}, "
            f"deadline-stamped mean {result['mean']:.4f}s"
        )
    finally:
        _stop(proc)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--timeout", type=float, default=180.0)
    args = parser.parse_args(argv)

    _single_worker_stage(args.scale, args.timeout)
    _cross_version_stage(args.scale, args.timeout)
    _worker_pool_stage(args.scale, args.timeout)
    _scheduler_stage(args.scale, args.timeout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
