"""Dependency-free lint: dead imports and stale ``__all__`` exports.

The container has no ruff/flake8, so this AST-based checker covers the
two classes of rot that bite a growing multi-package repo the hardest:

* module-level imports that nothing in the module uses;
* ``__all__`` entries that name nothing defined in the module.

Conventions honored:

* ``__init__.py`` imports are re-exports; they are only flagged when the
  module has an ``__all__`` and the name is missing from it.
* ``import x as x`` / ``from m import x as x`` is the explicit
  re-export idiom and is never flagged.
* ``from __future__ import ...`` is ignored.
* names referenced only inside quoted (forward-reference) annotations
  count as used — the ``if TYPE_CHECKING:`` import idiom.

Benchmark files (any path containing a ``benchmarks`` directory) get
one extra check: no process-global randomness. Benchmarks must be
bitwise-reproducible across runs and machines, so calls into the
module-level ``random`` / ``numpy.random`` state (or constructing a
generator without an explicit seed) are flagged, as is builtin
``hash()`` (randomized per process for strings — the flakiness that
once made metric benches drift across runs). Use ``random.Random(seed)``
/ ``np.random.default_rng(seed)`` / ``zlib.crc32`` instead.

Usage: ``python tools/lint.py [paths...]`` (defaults to src, tests,
benchmarks, examples, tools). Exit status 1 when problems were found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")

#: RNG constructors that are fine *when given an explicit seed*.
SEEDED_RNG_CONSTRUCTORS = {
    "random.Random",
    "random.SystemRandom",  # never reproducible, but also never silent drift
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

_RNG_MODULES = ("random", "numpy.random")


def _imported_names(tree: ast.AST):
    """Yield (local name, node, explicit_reexport) for every import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                explicit = alias.asname is not None and alias.asname == alias.name
                yield local, node, explicit
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                explicit = alias.asname is not None and alias.asname == alias.name
                yield local, node, explicit


def _annotation_nodes(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            yield node.annotation
        elif isinstance(node, ast.arg) and node.annotation is not None:
            yield node.annotation
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                yield node.returns


def _used_names(tree: ast.AST) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # the root of a dotted chain is an ast.Name, already covered
            continue
    # Quoted forward references ("ClassName", 'pkg.Cls | None') hide their
    # names in string constants; parse every string found in an
    # annotation position and count its names as used.
    for annotation in _annotation_nodes(tree):
        for node in ast.walk(annotation):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            for name in ast.walk(parsed):
                if isinstance(name, ast.Name):
                    used.add(name.id)
    return used


def _dunder_all(tree: ast.AST) -> list[str] | None:
    """The union of every ``__all__ = [...]`` / ``__all__ += [...]``.

    Returns None when the module declares no ``__all__`` or when any of
    its parts is not a literal (dynamic exports: don't guess).
    """
    names: list[str] = []
    found = False
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                found = True
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None
                names.extend(str(name) for name in value)
    return names if found else None


def _defined_names(tree: ast.Module) -> set[str]:
    defined: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                defined.add(node.target.id)
    defined.update(local for local, _, _ in _imported_names(tree))
    return defined


def _rng_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name -> dotted module for random / numpy(.random) imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("random", "numpy", "numpy.random"):
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        # `import numpy.random` binds the name `numpy`.
                        root = alias.name.split(".")[0]
                        aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("random", "numpy", "numpy.random"):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """``np.random.default_rng`` -> ``numpy.random.default_rng``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in aliases:
        return ".".join([aliases[node.id], *reversed(parts)])
    return None


def check_benchmark_rng(path: Path, tree: ast.AST) -> list[str]:
    """Flag process-global / unseeded randomness in benchmark files."""
    aliases = _rng_aliases(tree)
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            problems.append(
                f"{path}:{node.lineno}: hash() in a benchmark is randomized "
                "per process for strings; use zlib.crc32 or a seeded RNG"
            )
            continue
        dotted = _resolve_dotted(node.func, aliases)
        if dotted is None or not any(
            dotted.startswith(module + ".") for module in _RNG_MODULES
        ):
            continue
        if dotted in SEEDED_RNG_CONSTRUCTORS:
            if node.args or node.keywords:
                continue
            problems.append(
                f"{path}:{node.lineno}: {dotted}() without an explicit seed "
                "in a benchmark; pass one so runs are reproducible"
            )
        else:
            problems.append(
                f"{path}:{node.lineno}: {dotted}() uses process-global "
                "random state in a benchmark; use random.Random(seed) / "
                "np.random.default_rng(seed)"
            )
    return problems


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]

    problems: list[str] = []
    exported = _dunder_all(tree)
    used = _used_names(tree)
    is_package_init = path.name == "__init__.py"

    for local, node, explicit_reexport in _imported_names(tree):
        if explicit_reexport:
            continue
        if local in used:
            continue
        if exported is not None and local in exported:
            continue
        if is_package_init and exported is None:
            continue  # bare re-export package with no declared surface
        problems.append(f"{path}:{node.lineno}: unused import {local!r}")

    if exported is not None:
        defined = _defined_names(tree)
        for name in exported:
            if name not in defined:
                problems.append(
                    f"{path}: __all__ names {name!r} which is not defined"
                )

    if "benchmarks" in path.parts:
        problems.extend(check_benchmark_rng(path, tree))
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] if argv else [
        Path(name) for name in DEFAULT_PATHS
    ]
    problems: list[str] = []
    checked = 0
    for root in roots:
        if not root.exists():
            continue
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            problems.extend(check_file(path))
            checked += 1
    for problem in problems:
        print(problem)
    print(f"lint: {checked} files checked, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
