"""Legacy lint entry point — now a shim over ``tools/staticcheck``.

The rules that used to live here (dead imports, stale ``__all__``
exports, unseeded randomness in benchmarks) migrated into the
pluggable framework in ``tools/staticcheck/`` along with the new
concurrency and taxonomy rules. This module keeps the original
command-line contract and public functions alive for callers and
tests that pin them:

* ``python tools/lint.py [paths...]`` — same defaults, same message
  texts, same ``lint: N files checked, M problems`` summary, same
  exit status;
* ``check_file(path) -> list[str]`` and
  ``check_benchmark_rng(path, tree) -> list[str]`` — same legacy
  message strings.

New code should run ``python tools/staticcheck`` (or ``repro
staticcheck``) directly: it adds lock-discipline,
blocking-while-locked, wider determinism coverage, error-taxonomy,
suppressions, a baseline, and parallel fan-out. See
``docs/staticcheck.md``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from staticcheck.checks.determinism import rng_findings  # noqa: E402
from staticcheck.checks.imports import (  # noqa: E402
    export_findings,
    import_findings,
)
from staticcheck.core import (  # noqa: E402
    FileContext,
    apply_suppressions,
    parse_suppressions,
)

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")

#: rules this legacy surface runs; passing the set to apply_suppressions
#: also turns off unused-suppression reporting (staticcheck's job).
_LEGACY_RULES = {"unused-import", "undefined-export", "determinism"}


def _legacy_line(finding) -> str:
    """Render a Finding in the original lint.py message format."""
    if finding.rule == "undefined-export":
        # the legacy message carried no line number
        return f"{finding.path}: {finding.message}"
    return f"{finding.path}:{finding.line}: {finding.message}"


def check_benchmark_rng(path: Path, tree: ast.AST) -> list[str]:
    """Flag process-global / unseeded randomness in benchmark files."""
    ctx = FileContext(path)
    ctx._tree = tree
    return [
        _legacy_line(finding)
        for finding in rng_findings(ctx, noun="a benchmark")
    ]


def check_file(path: Path) -> list[str]:
    path = Path(path)
    ctx = FileContext(path)
    try:
        ctx.tree
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]

    findings = [*import_findings(ctx), *export_findings(ctx)]
    if "benchmarks" in path.parts:
        findings.extend(rng_findings(ctx, noun="a benchmark"))
    findings = apply_suppressions(
        ctx, findings, parse_suppressions(ctx.source), selected=_LEGACY_RULES
    )
    return [_legacy_line(finding) for finding in findings]


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] if argv else [
        Path(name) for name in DEFAULT_PATHS
    ]
    problems: list[str] = []
    checked = 0
    for root in roots:
        if not root.exists():
            continue
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            problems.extend(check_file(path))
            checked += 1
    for problem in problems:
        print(problem)
    print(f"lint: {checked} files checked, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
