"""Pluggable dependency-free static analysis for this repository.

``staticcheck`` grew out of ``tools/lint.py`` (which is now a thin
compatibility shim over this package). It is an AST-based framework:

* a **check registry** (:mod:`staticcheck.core`) — every rule is a
  small class with a stable name; ``--select`` narrows the run;
* a per-file **parsed-AST cache** — each file is read and parsed once
  (:class:`~staticcheck.core.FileContext`), then every applicable
  check walks the same tree;
* **process fan-out** (``--jobs N``) over the file list;
* **inline suppressions** (``# staticcheck: disable=<rule>``) with
  unused-suppression detection;
* a committed **JSON baseline** for grandfathered findings
  (:mod:`staticcheck.baseline`);
* ``text`` / ``json`` / ``github`` (``::error file=...``) output.

The checks target this codebase's actual failure modes — the
concurrency and determinism bugs PR 5's replay harness caught at
runtime (see ``docs/staticcheck.md`` for the rule catalogue):

* ``lock-discipline`` — attributes accessed under a class's lock must
  not be mutated without it; double-acquiring a non-reentrant lock;
* ``blocking-while-locked`` — no ``time.sleep`` / socket / HTTP /
  subprocess work while holding a lock;
* ``determinism`` — no process-global or unseeded RNG and no builtin
  ``hash()`` in benchmarks or the replay/datagen/experiments
  subsystems;
* ``error-taxonomy`` — wire-facing code raises only exceptions with
  registered error codes and serializes through the NaN-guarded
  ``repro.api.wire`` helpers;
* ``unused-import`` / ``undefined-export`` — the migrated legacy lint
  rules.

Run it as ``python tools/staticcheck`` or ``repro staticcheck``.
"""

from .baseline import Baseline
from .core import (
    ALL_CHECKS,
    Check,
    FileContext,
    Finding,
    apply_suppressions,
    parse_suppressions,
    register,
)
from .runner import check_file, discover_files, main, run_checks

__all__ = [
    "ALL_CHECKS",
    "Baseline",
    "Check",
    "FileContext",
    "Finding",
    "apply_suppressions",
    "check_file",
    "discover_files",
    "main",
    "parse_suppressions",
    "register",
    "run_checks",
]
