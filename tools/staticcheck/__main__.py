"""Directory entry point: ``python tools/staticcheck [args]``.

Running a package directory puts the *package dir* on ``sys.path``, not
its parent, so relative imports inside the package would fail; insert
the parent (``tools/``) and import ourselves absolutely.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from staticcheck.runner import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
