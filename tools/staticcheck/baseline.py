"""Committed-baseline support: accept known findings, expire fixed ones.

The baseline file (``tools/staticcheck_baseline.json``) is a sorted
JSON list of finding fingerprints plus a human-readable echo of each
entry. A finding whose fingerprint appears in the baseline is filtered
from the run's output; a baseline entry matching no current finding is
*expired* and reported (exit 1) so the file shrinks monotonically — the
baseline is a ratchet for burning down debt, not a dumping ground.

Fingerprints hash ``path::rule::message`` (no line number), so edits
elsewhere in a file do not churn the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import Finding

__all__ = ["Baseline"]


class Baseline:
    """The set of accepted finding fingerprints."""

    def __init__(self, entries: dict[str, dict] | None = None):
        self.entries: dict[str, dict] = dict(entries or {})

    # -- construction -------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not Path(path).is_file():
            return cls()
        data = json.loads(Path(path).read_text())
        entries = {
            entry["fingerprint"]: entry for entry in data.get("findings", [])
        }
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls({f.fingerprint: _entry(f) for f in findings})

    def write(self, path: Path) -> None:
        payload = {
            "note": (
                "Accepted staticcheck findings. Regenerate with "
                "`python tools/staticcheck --write-baseline`; entries "
                "matching no current finding fail the run as expired."
            ),
            "findings": sorted(
                self.entries.values(),
                key=lambda entry: (entry["path"], entry["rule"], entry["message"]),
            ),
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # -- application --------------------------------------------------

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[dict]]:
        """(new findings not in baseline, expired baseline entries)."""
        seen: set[str] = set()
        fresh: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint
            if fingerprint in self.entries:
                seen.add(fingerprint)
            else:
                fresh.append(finding)
        expired = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in seen
        ]
        return fresh, expired


def _entry(finding: Finding) -> dict:
    return {
        "fingerprint": finding.fingerprint,
        "path": finding.path,
        "rule": finding.rule,
        "message": finding.message,
    }
