"""Check modules; importing this package populates the registry.

Each module registers its rules with :func:`staticcheck.core.register`
at import time, so the registry is complete once this package is
imported (the runner does so before selecting rules).
"""

from . import determinism, imports, locks, taxonomy, vectorization

__all__ = ["determinism", "imports", "locks", "taxonomy", "vectorization"]
