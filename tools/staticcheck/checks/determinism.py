"""Repo-wide determinism: no process-global RNG, no builtin ``hash()``.

The legacy benchmark-only unseeded-RNG rule, extended to every
subsystem whose outputs must be bitwise-reproducible across runs and
machines: ``benchmarks/`` (the regression-guarded scenarios),
``src/repro/replay/`` (byte-identical schedules per seed is the
subsystem's core contract), ``src/repro/datagen/`` (deterministic
database generation is what makes sessions reproducible),
``src/repro/experiments/`` (the paper's tables and figures), and
``src/repro/service/`` (the batch kernels are bitwise-locked to the
scalar path and the routing ring keys on the interned CRC-32 plan
signature — a stray ``hash()`` or global RNG would silently break
both contracts).

Flagged:

* calls into the module-level ``random`` / ``numpy.random`` state
  (``random.random()``, ``np.random.rand()``, ``random.seed()`` — the
  process-global generator is shared, order-dependent state);
* RNG constructors without an explicit seed (``random.Random()``,
  ``np.random.default_rng()``);
* builtin ``hash()`` — randomized per process for strings.

Use ``random.Random(seed)`` / ``np.random.default_rng(seed)`` /
``zlib.crc32`` instead.
"""

from __future__ import annotations

import ast

from ..core import (
    Check,
    FileContext,
    Finding,
    import_aliases,
    register,
    resolve_dotted,
)

__all__ = ["DeterminismCheck", "rng_findings"]

#: RNG constructors that are fine *when given an explicit seed*.
SEEDED_RNG_CONSTRUCTORS = {
    "random.Random",
    "random.SystemRandom",  # never reproducible, but also never silent drift
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

_RNG_MODULES = ("random", "numpy.random")

#: ``src/repro/<dir>`` trees held to the same bar as ``benchmarks/``.
DETERMINISTIC_SUBSYSTEMS = ("replay", "datagen", "experiments", "service")


def _noun(ctx: FileContext) -> str:
    """Where the determinism requirement comes from, for messages."""
    if "benchmarks" in ctx.path.parts:
        return "a benchmark"
    return "replay/datagen/experiments/service code"


def rng_findings(ctx: FileContext, noun: str | None = None) -> list[Finding]:
    """Flag process-global / unseeded randomness and builtin ``hash()``."""
    tree = ctx.tree
    noun = noun or _noun(ctx)
    aliases = import_aliases(tree)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            findings.append(
                ctx.finding(
                    node.lineno,
                    "determinism",
                    f"hash() in {noun} is randomized per process for "
                    "strings; use zlib.crc32 or a seeded RNG",
                )
            )
            continue
        dotted = resolve_dotted(node.func, aliases)
        if dotted is None or not any(
            dotted.startswith(module + ".") for module in _RNG_MODULES
        ):
            continue
        if dotted in SEEDED_RNG_CONSTRUCTORS:
            if node.args or node.keywords:
                continue
            findings.append(
                ctx.finding(
                    node.lineno,
                    "determinism",
                    f"{dotted}() without an explicit seed in {noun}; "
                    "pass one so runs are reproducible",
                )
            )
        else:
            findings.append(
                ctx.finding(
                    node.lineno,
                    "determinism",
                    f"{dotted}() uses process-global random state in "
                    f"{noun}; use random.Random(seed) / "
                    "np.random.default_rng(seed)",
                )
            )
    return findings


@register
class DeterminismCheck(Check):
    name = "determinism"

    def applies(self, ctx: FileContext) -> bool:
        parts = ctx.path.parts
        if "benchmarks" in parts:
            return True
        return "repro" in parts and any(
            subsystem in parts for subsystem in DETERMINISTIC_SUBSYSTEMS
        )

    def run(self, ctx: FileContext) -> list[Finding]:
        return rng_findings(ctx)
