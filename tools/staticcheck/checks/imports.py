"""The migrated legacy lint rules: dead imports and stale ``__all__``.

Semantics are identical to the original ``tools/lint.py`` (which now
shims onto these functions — ``tests/test_lint.py`` pins them):

* ``unused-import`` — a module-level import nothing in the module uses.
  ``__init__.py`` imports are re-exports and are only flagged when the
  module declares an ``__all__`` missing the name; ``import x as x`` is
  the explicit re-export idiom and is never flagged; names referenced
  only inside quoted forward-reference annotations count as used.
* ``undefined-export`` — an ``__all__`` entry naming nothing defined in
  the module.
"""

from __future__ import annotations

import ast

from ..core import Check, FileContext, Finding, register

__all__ = [
    "UndefinedExportCheck",
    "UnusedImportCheck",
    "export_findings",
    "import_findings",
]


def _imported_names(tree: ast.AST):
    """Yield (local name, node, explicit_reexport) for every import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                explicit = alias.asname is not None and alias.asname == alias.name
                yield local, node, explicit
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                explicit = alias.asname is not None and alias.asname == alias.name
                yield local, node, explicit


def _annotation_nodes(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            yield node.annotation
        elif isinstance(node, ast.arg) and node.annotation is not None:
            yield node.annotation
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                yield node.returns


def _used_names(tree: ast.AST) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
    # Quoted forward references ("ClassName", 'pkg.Cls | None') hide
    # their names in string constants; parse every string found in an
    # annotation position and count its names as used.
    for annotation in _annotation_nodes(tree):
        for node in ast.walk(annotation):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            for name in ast.walk(parsed):
                if isinstance(name, ast.Name):
                    used.add(name.id)
    return used


def _dunder_all(tree: ast.AST) -> list[tuple[str, int]] | None:
    """Every ``__all__`` entry with the assignment's line number.

    Returns None when the module declares no ``__all__`` or any part is
    not a literal (dynamic exports: don't guess).
    """
    names: list[tuple[str, int]] = []
    found = False
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                found = True
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None
                names.extend((str(name), node.lineno) for name in value)
    return names if found else None


def _defined_names(tree: ast.Module) -> set[str]:
    defined: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                defined.add(node.target.id)
    defined.update(local for local, _, _ in _imported_names(tree))
    return defined


def import_findings(ctx: FileContext) -> list[Finding]:
    """Module-level imports nothing in the module uses."""
    tree = ctx.tree
    exported = _dunder_all(tree)
    exported_names = {name for name, _ in exported} if exported is not None else None
    used = _used_names(tree)
    is_package_init = ctx.path.name == "__init__.py"

    findings: list[Finding] = []
    for local, node, explicit_reexport in _imported_names(tree):
        if explicit_reexport:
            continue
        if local in used:
            continue
        if exported_names is not None and local in exported_names:
            continue
        if is_package_init and exported_names is None:
            continue  # bare re-export package with no declared surface
        findings.append(
            ctx.finding(node.lineno, "unused-import", f"unused import {local!r}")
        )
    return findings


def export_findings(ctx: FileContext) -> list[Finding]:
    """``__all__`` entries that name nothing defined in the module."""
    tree = ctx.tree
    exported = _dunder_all(tree)
    if exported is None:
        return []
    defined = _defined_names(tree)
    return [
        ctx.finding(
            lineno,
            "undefined-export",
            f"__all__ names {name!r} which is not defined",
        )
        for name, lineno in exported
        if name not in defined
    ]


@register
class UnusedImportCheck(Check):
    name = "unused-import"

    def run(self, ctx: FileContext) -> list[Finding]:
        return import_findings(ctx)


@register
class UndefinedExportCheck(Check):
    name = "undefined-export"

    def run(self, ctx: FileContext) -> list[Finding]:
        return export_findings(ctx)
