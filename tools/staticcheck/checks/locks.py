"""Lock discipline and blocking-while-locked.

These two rules target the exact bug shapes PR 5's replay harness had
to catch at runtime:

* **lock-discipline** — per class, infer which attributes a lock
  guards (any attribute read or written inside a ``with self._lock:``
  block of any method) and flag *mutations* of those attributes on
  paths that do not hold the lock (the torn cache-stat bug: counters
  bumped under the lock in ``get()`` but incremented bare elsewhere).
  Also flags lexically re-acquiring a non-reentrant ``threading.Lock``
  already held — a guaranteed deadlock.

  Reads outside the lock are *not* flagged: single-attribute loads are
  atomic under the GIL and monitoring code legitimately does them; it
  is interleaved read-modify-write and multi-field invariants that
  tear, and those require a mutation.

  ``__init__`` (and friends) are exempt — construction happens-before
  any sharing. Other init-path methods that assign guarded attributes
  need an explicit ``# staticcheck: disable=lock-discipline`` with a
  justification, which is the convention this repo adopts.

* **blocking-while-locked** — ``time.sleep``, socket/HTTP client
  calls, or ``subprocess`` invocations inside a held-lock block (the
  admission bug's shape: a slot held across backoff stalls every other
  thread behind work that isn't compute). Locks are recognized by
  class inference (attributes assigned ``threading.Lock()`` /
  ``RLock()``), by inline ``with threading.Lock():`` constructions,
  and by name (any context-manager expression whose terminal
  identifier contains ``lock``).
"""

from __future__ import annotations

import ast

from ..core import (
    Check,
    FileContext,
    Finding,
    import_aliases,
    register,
    resolve_dotted,
    self_root_attr,
)

__all__ = ["BlockingWhileLockedCheck", "LockDisciplineCheck"]

_LOCK_CONSTRUCTORS = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
}

#: with-capable synchronization constructors beyond plain locks — holding
#: any of them while blocking has the same starvation shape.
_HELD_CONSTRUCTORS = {
    *_LOCK_CONSTRUCTORS,
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

#: construction-path methods where unguarded writes are happens-before
#: any concurrent access by definition.
_INIT_METHODS = {"__init__", "__new__", "__post_init__", "__init_subclass__"}

#: method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: dotted callables that block on time or I/O.
_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "socket.create_connection",
    "http.client.HTTPConnection",
    "http.client.HTTPSConnection",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.delete",
    "requests.head",
    "requests.request",
}


def _terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``self.a.b`` -> b)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _expr_text(node: ast.AST) -> str:
    """A compact dotted rendering for messages (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)) or "<lock>"


class _ClassLocks:
    """Per-class lock inventory: ``self.X = threading.Lock()`` attrs."""

    def __init__(self, cls: ast.ClassDef, aliases: dict[str, str]):
        self.attrs: dict[str, str] = {}  # attr -> "Lock" | "RLock"
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            dotted = resolve_dotted(node.value.func, aliases)
            kind = _LOCK_CONSTRUCTORS.get(dotted or "")
            if kind is None:
                continue
            for target in node.targets:
                attr = self_root_attr(target)
                if attr is not None:
                    self.attrs[attr] = kind

    def held_in_with(self, item: ast.withitem) -> str | None:
        """The lock attr a ``with self.X:`` item acquires, if any."""
        attr = self_root_attr(item.context_expr)
        if attr in self.attrs:
            return attr
        return None


def _methods(cls: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _guarded_attrs(
    cls: ast.ClassDef, locks: _ClassLocks, method_names: set[str]
) -> dict[str, str]:
    """attr -> guarding lock, for attrs touched under any with-lock block."""
    guarded: dict[str, str] = {}
    for method in _methods(cls):
        for node in ast.walk(method):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held = [
                attr
                for attr in (locks.held_in_with(item) for item in node.items)
                if attr is not None
            ]
            if not held:
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Attribute):
                    continue
                if not (
                    isinstance(sub.value, ast.Name) and sub.value.id == "self"
                ):
                    continue
                attr = sub.attr
                if attr in locks.attrs or attr in method_names:
                    continue
                guarded.setdefault(attr, held[0])
    return guarded


def _mutated_roots(node: ast.AST) -> list[str]:
    """Guardable self-attrs this statement/expression mutates."""
    roots: list[str] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target] if getattr(node, "value", None) is not None else []
    elif isinstance(node, ast.Delete):
        targets = node.targets
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            root = self_root_attr(func.value)
            if root is not None:
                return [root]
        return []
    else:
        return []
    for target in targets:
        nodes = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        for sub in nodes:
            root = self_root_attr(sub)
            if root is not None:
                roots.append(root)
    return roots


@register
class LockDisciplineCheck(Check):
    """Unguarded mutation of lock-guarded attributes; double acquire."""

    name = "lock-discipline"

    def run(self, ctx: FileContext) -> list[Finding]:
        aliases = import_aliases(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node, aliases))
        return findings

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, aliases: dict[str, str]
    ) -> list[Finding]:
        locks = _ClassLocks(cls, aliases)
        if not locks.attrs:
            return []
        method_names = {method.name for method in _methods(cls)}
        guarded = _guarded_attrs(cls, locks, method_names)
        findings: list[Finding] = []
        for method in _methods(cls):
            exempt = method.name in _INIT_METHODS
            self._walk(
                ctx, cls, locks, guarded, method, method.body,
                held=frozenset(), findings=findings, exempt=exempt,
            )
        return findings

    def _walk(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        locks: _ClassLocks,
        guarded: dict[str, str],
        method,
        body: list[ast.stmt],
        held: frozenset,
        findings: list[Finding],
        exempt: bool,
    ) -> None:
        for node in body:
            self._visit(ctx, cls, locks, guarded, method, node, held, findings, exempt)

    def _visit(
        self, ctx, cls, locks, guarded, method, node, held, findings, exempt
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, on its own call stack: the
            # enclosing with-block's lock is NOT held when it executes.
            self._walk(
                ctx, cls, locks, guarded, method, node.body,
                held=frozenset(), findings=findings, exempt=exempt,
            )
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                attr = locks.held_in_with(item)
                if attr is None:
                    continue
                if attr in held and locks.attrs[attr] == "Lock":
                    findings.append(
                        ctx.finding(
                            node.lineno,
                            self.name,
                            f"{cls.name}.{method.name} re-acquires "
                            f"self.{attr} while already holding it; "
                            "threading.Lock is not reentrant — this "
                            "deadlocks",
                        )
                    )
                acquired.add(attr)
            self._walk(
                ctx, cls, locks, guarded, method, node.body,
                held=held | acquired, findings=findings, exempt=exempt,
            )
            return
        if not held and not exempt:
            for root in _mutated_roots(node):
                lock = guarded.get(root)
                if lock is not None:
                    findings.append(
                        ctx.finding(
                            node.lineno,
                            self.name,
                            f"{cls.name}.{method.name} mutates "
                            f"self.{root} without holding self.{lock} "
                            "(the attribute is accessed under that lock "
                            "elsewhere in the class) — concurrent "
                            "updates can tear",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            self._visit(
                ctx, cls, locks, guarded, method, child, held, findings, exempt
            )


def _held_by_item(
    item: ast.withitem, lock_attrs: dict[str, str], aliases: dict[str, str]
) -> str | None:
    """A human-readable description of the lock this with-item holds."""
    expr = item.context_expr
    attr = self_root_attr(expr)
    if attr is not None and attr in lock_attrs:
        return f"self.{attr}"
    if isinstance(expr, ast.Call):
        dotted = resolve_dotted(expr.func, aliases)
        if dotted in _HELD_CONSTRUCTORS:
            return f"{dotted}()"
        return None
    name = _terminal_name(expr)
    if name is not None and "lock" in name.lower():
        return _expr_text(expr)
    return None


@register
class BlockingWhileLockedCheck(Check):
    """``time.sleep`` / I/O / subprocess calls under a held lock."""

    name = "blocking-while-locked"

    def run(self, ctx: FileContext) -> list[Finding]:
        tree = ctx.tree
        aliases = import_aliases(tree)
        findings: list[Finding] = []
        # Class lock inventories make `with self._admission_lock:` et al.
        # recognizable even when the attribute name alone would not be.
        lock_attrs: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                lock_attrs.update(_ClassLocks(node, aliases).attrs)
        self._walk(ctx, tree.body, aliases, lock_attrs, None, findings)
        return findings

    def _walk(self, ctx, body, aliases, lock_attrs, held, findings) -> None:
        for node in body:
            self._visit(ctx, node, aliases, lock_attrs, held, findings)

    def _visit(self, ctx, node, aliases, lock_attrs, held, findings) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            body = node.body if isinstance(node.body, list) else [node.body]
            self._walk(ctx, body, aliases, lock_attrs, None, findings)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            descriptions = [
                description
                for description in (
                    _held_by_item(item, lock_attrs, aliases) for item in node.items
                )
                if description is not None
            ]
            inner = held if not descriptions else (held or descriptions[0])
            self._walk(ctx, node.body, aliases, lock_attrs, inner, findings)
            return
        if held is not None and isinstance(node, ast.Call):
            dotted = resolve_dotted(node.func, aliases)
            if dotted in _BLOCKING_CALLS:
                findings.append(
                    ctx.finding(
                        node.lineno,
                        self.name,
                        f"{dotted}() while holding {held}: the lock is "
                        "pinned for the full sleep/IO — every other "
                        "thread needing it stalls; release before "
                        "blocking",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, aliases, lock_attrs, held, findings)
