"""Error taxonomy and wire-safety for the serving surface.

Two sub-rules, both scoped to the code whose failures cross a process
boundary — ``src/repro/api/``, ``src/repro/serving/``,
``src/repro/cli.py`` and ``src/repro/replay/``:

* **error-taxonomy** — every exception raised there must map to a
  stable machine-readable code via ``repro.errors.ERROR_CODES``
  (clients dispatch on ``error.code``, not on message text). A raise of
  a bare ``ValueError`` would reach the wire as the catch-all
  ``"error"`` code and clients lose the ability to distinguish a bad
  request from an internal fault. Raising a *registered* class, a local
  subclass of one, or a tiny allowlist of control-flow builtins
  (``SystemExit`` etc.) is fine; re-raising a caught name (``raise
  err``) and lowercase factory helpers (``raise self._structured(...)``)
  are not judged — only direct CapWord constructions are.

* **error-taxonomy** (wire floats) — ``json.dumps`` / ``json.dump``
  called outside ``repro.api.wire`` bypasses the schema's
  ``allow_nan=False`` guard: a NaN latency estimate would serialize as
  the *invalid-JSON* token ``NaN`` and break strict parsers downstream.
  All wire-facing serialization must route through ``wire.dumps``.

The registered-class set is parsed from ``src/repro/errors.py`` when
the file is visible from the analysis root, so the rule tracks the
taxonomy without a hand-maintained list; a snapshot fallback keeps the
check meaningful for fixture trees that have no ``errors.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..core import (
    Check,
    FileContext,
    Finding,
    import_aliases,
    register,
    resolve_dotted,
)

__all__ = ["ErrorTaxonomyCheck", "registered_error_classes"]

#: Snapshot of ``repro.errors`` class names, used when the real module
#: is not under the analysis root (tmp-dir fixtures, tests).
_FALLBACK_CLASSES = frozenset(
    {
        "ReproError",
        "SchemaError",
        "CatalogError",
        "SqlError",
        "SqlLexError",
        "SqlParseError",
        "PlanError",
        "OptimizerError",
        "ExecutionError",
        "SamplingError",
        "CalibrationError",
        "FittingError",
        "PredictionError",
        "SessionError",
        "ServingError",
        "FeedbackError",
        "SchedulerError",
        "WireError",
    }
)

#: Builtins whose raise is control flow / contract, not a wire error.
_ALLOWED_BUILTINS = frozenset(
    {"SystemExit", "KeyboardInterrupt", "StopIteration", "NotImplementedError"}
)

#: Subsystems whose raises and serialization cross the wire.
_WIRE_FACING = ("api", "feedback", "replay", "scheduler", "serving")


def registered_error_classes(root: Path | None) -> frozenset[str]:
    """Class names defined in ``src/repro/errors.py`` under ``root``."""
    if root is not None:
        errors_py = Path(root) / "src" / "repro" / "errors.py"
        if errors_py.is_file():
            try:
                tree = ast.parse(errors_py.read_text())
            except (OSError, SyntaxError):
                return _FALLBACK_CLASSES
            names = {
                node.name
                for node in ast.walk(tree)
                if isinstance(node, ast.ClassDef)
            }
            if names:
                return frozenset(names)
    return _FALLBACK_CLASSES


def _local_taxonomy_subclasses(
    tree: ast.Module, registered: frozenset[str]
) -> set[str]:
    """Classes in this module that (transitively) extend a registered one."""
    bases: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        names = set()
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.add(base.id)
            elif isinstance(base, ast.Attribute):
                names.add(base.attr)
        bases[node.name] = names
    members = set(registered)
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in members and parents & members:
                members.add(name)
                changed = True
    return members - set(registered)


def _raised_class_name(node: ast.Raise) -> tuple[str | None, bool]:
    """(class name of a direct ``raise Cls(...)``/``raise Cls``, is_attr).

    Returns (None, False) for re-raises, raised variables, and
    lowercase callees (factory helpers construct taxonomy members —
    their return type is not statically visible and not our problem).
    """
    exc = node.exc
    if exc is None:  # bare re-raise
        return None, False
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        name = exc.attr
        return (name, True) if name[:1].isupper() else (None, False)
    if isinstance(exc, ast.Name):
        name = exc.id
        return (name, False) if name[:1].isupper() else (None, False)
    return None, False


@register
class ErrorTaxonomyCheck(Check):
    """Unregistered raises and unguarded JSON on the serving surface."""

    name = "error-taxonomy"

    def applies(self, ctx: FileContext) -> bool:
        parts = ctx.path.parts
        if "repro" not in parts:
            return False
        if ctx.path.name == "cli.py":
            return True
        return any(part in _WIRE_FACING for part in parts)

    def run(self, ctx: FileContext) -> list[Finding]:
        tree = ctx.tree
        registered = registered_error_classes(ctx.root)
        allowed = (
            registered
            | _local_taxonomy_subclasses(tree, registered)
            | _ALLOWED_BUILTINS
        )
        findings = [
            *self._raise_findings(ctx, tree, allowed),
            *self._json_findings(ctx, tree),
        ]
        return findings

    def _raise_findings(
        self, ctx: FileContext, tree: ast.Module, allowed: frozenset[str] | set[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise):
                continue
            name, _is_attr = _raised_class_name(node)
            if name is None or name in allowed:
                continue
            findings.append(
                ctx.finding(
                    node.lineno,
                    self.name,
                    f"raise {name} in wire-facing code: the class carries "
                    "no code in repro.errors.ERROR_CODES, so clients see "
                    'the catch-all "error" code; raise a registered '
                    "taxonomy class (or subclass one)",
                )
            )
        return findings

    def _json_findings(self, ctx: FileContext, tree: ast.Module) -> list[Finding]:
        # wire.py IS the guard; everything else must call through it.
        if ctx.path.name == "wire.py" and "api" in ctx.path.parts:
            return []
        aliases = import_aliases(tree)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted not in ("json.dumps", "json.dump"):
                continue
            findings.append(
                ctx.finding(
                    node.lineno,
                    self.name,
                    f"{dotted}() in wire-facing code bypasses the "
                    "allow_nan=False guard — a NaN float serializes as "
                    "invalid JSON; route through repro.api.wire.dumps",
                )
            )
        return findings
