"""Hot-array hygiene for the SoA batch kernels.

``src/repro/service/kernels.py`` exists so batch prediction runs as
whole-array operations; its speedup over the scalar reference path is
regression-guarded by a hard benchmark floor (``soa_retained`` in
``benchmarks/bench_service_throughput.py``). The two easiest ways to
silently erode that floor are both scalarization creep inside the
kernel's loops:

* ``float(...)`` — each call boxes one array element back into a
  python float, usually to feed scalar math that should have stayed an
  array expression (array-wide conversion via ``.tolist()`` at the
  materialization boundary is the sanctioned pattern, and the one
  scalar ``float(erfinv(...))`` the interval math needs is hoisted out
  of any loop);
* scalar accumulation (``acc += ...`` / ``acc = acc + ...`` on a bare
  name) — a python-level reduction where the array op belongs.

This check flags both patterns inside any ``for``/``while`` loop of the
registered hot-array modules. Assignments to *subscripts*
(``out[i] = mu @ row``) stay legal: the bitwise contract forces the
per-plan ddot loop (BLAS ddot accumulates with FMA; no batched
formulation reproduces its bits), and that loop writes array slots
rather than accumulating into python scalars.
"""

from __future__ import annotations

import ast

from ..core import Check, FileContext, Finding, register

__all__ = ["HOT_ARRAY_MODULES", "VectorizationCheck"]

#: Repo-relative modules held to whole-array discipline.
HOT_ARRAY_MODULES = ("src/repro/service/kernels.py",)


def _loop_findings(ctx: FileContext, loop: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(loop):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "float":
                findings.append(
                    ctx.finding(
                        node.lineno,
                        "vectorization",
                        "float() inside a hot kernel loop boxes array "
                        "elements one at a time; hoist it out of the loop "
                        "or convert whole arrays with .tolist()",
                    )
                )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            findings.append(_accumulation(ctx, node, node.target.id))
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.BinOp)
            and any(
                isinstance(ref, ast.Name) and ref.id == node.targets[0].id
                for ref in ast.walk(node.value)
            )
        ):
            findings.append(_accumulation(ctx, node, node.targets[0].id))
    return findings


def _accumulation(ctx: FileContext, node: ast.AST, name: str) -> Finding:
    return ctx.finding(
        node.lineno,
        "vectorization",
        f"scalar accumulation into {name!r} inside a hot kernel loop; "
        "use a whole-array reduction "
        "(subscript writes like out[i] = ... stay legal)",
    )


@register
class VectorizationCheck(Check):
    """No scalarization creep inside the hot array kernels' loops."""

    name = "vectorization"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel in HOT_ARRAY_MODULES or any(
            ctx.rel.endswith(module) for module in HOT_ARRAY_MODULES
        )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            if id(node) in seen:
                continue
            # Mark nested loops as covered so each offending statement
            # is reported once, from its outermost enclosing loop.
            for inner in ast.walk(node):
                if isinstance(inner, (ast.For, ast.While)):
                    seen.add(id(inner))
            findings.extend(_loop_findings(ctx, node))
        return findings
