"""Framework primitives: findings, file contexts, registry, suppressions.

A :class:`FileContext` owns one file's source and parsed AST — the
per-file AST cache: every check runs against the same tree instead of
re-reading and re-parsing per rule (what the old ``tools/lint.py`` did).

A :class:`Finding` is one problem at one location. Its ``fingerprint``
deliberately excludes the line number, so a committed baseline survives
unrelated edits above the finding.

Suppressions are inline comments::

    self._closed = False  # staticcheck: disable=lock-discipline — why it is safe

    # staticcheck: disable=blocking-while-locked — justification
    time.sleep(delay)

A trailing comment suppresses matching findings on its own line; a
standalone comment line suppresses them on the next statement line.
``disable=all`` matches every rule. Suppressions that match nothing are
themselves reported (rule ``unused-suppression``) so stale opt-outs
cannot accumulate.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ALL_CHECKS",
    "Check",
    "FileContext",
    "Finding",
    "Suppression",
    "apply_suppressions",
    "import_aliases",
    "parse_suppressions",
    "register",
    "resolve_dotted",
    "self_root_attr",
]


@dataclass(frozen=True)
class Finding:
    """One problem at one location. ``line`` 0 means "the whole file"."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> str:
        """A line-number-independent identity for baseline matching."""
        raw = f"{self.path}::{self.rule}::{self.message}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class FileContext:
    """One file's lazily-read source and lazily-parsed AST.

    Checks share this object, so the file is read and parsed exactly
    once per run whatever the number of applicable rules. ``root``
    relativizes the reported path (portable baselines); a file outside
    ``root`` — or with no root given — reports the path as passed.
    """

    def __init__(self, path, root: Path | None = None, source: str | None = None):
        self.path = Path(path)
        self.root = Path(root) if root is not None else None
        rel = str(path)
        if root is not None:
            try:
                rel = self.path.resolve().relative_to(Path(root).resolve()).as_posix()
            except ValueError:
                rel = str(path)
        self.rel = rel
        self._source = source
        self._tree: ast.Module | None = None

    @property
    def source(self) -> str:
        if self._source is None:
            self._source = self.path.read_text()
        return self._source

    @property
    def tree(self) -> ast.Module:
        """The parsed module; raises :class:`SyntaxError` on bad source."""
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    def finding(self, line: int, rule: str, message: str) -> Finding:
        return Finding(path=self.rel, line=line, rule=rule, message=message)


class Check:
    """Base class for one registered rule.

    Subclasses set ``name`` (the stable rule id used by ``--select``,
    suppressions, and the baseline) and implement :meth:`run`.
    :meth:`applies` gates by path so irrelevant files are never walked.
    """

    name: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def run(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError


#: rule name -> check instance; populated by :func:`register` at import
#: time of :mod:`staticcheck.checks`.
ALL_CHECKS: dict[str, Check] = {}


def register(cls: type[Check]) -> type[Check]:
    """Class decorator adding one check instance to :data:`ALL_CHECKS`."""
    check = cls()
    if not check.name:
        raise ValueError(f"{cls.__name__} must set a rule name")
    if check.name in ALL_CHECKS:
        raise ValueError(f"duplicate rule name {check.name!r}")
    ALL_CHECKS[check.name] = check
    return cls


# ---------------------------------------------------------------------------
# suppressions


_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class Suppression:
    """One inline opt-out: ``rules`` apply to findings on ``target``."""

    line: int  # the comment's own line
    target: int  # the line findings must sit on to be suppressed
    rules: frozenset[str]


def parse_suppressions(source: str) -> list[Suppression]:
    """Every ``# staticcheck: disable=...`` comment in ``source``.

    A comment-only line targets the next non-blank, non-comment line;
    a trailing comment targets its own line. Real COMMENT tokens only —
    matching text inside a docstring or string literal is ignored, so
    documentation can show the idiom without activating it.
    """
    comment_lines: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comment_lines[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    suppressions: list[Suppression] = []
    lines = source.splitlines()
    for index, text in enumerate(lines, start=1):
        comment = comment_lines.get(index)
        if comment is None:
            continue
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        target = index
        if text.lstrip().startswith("#"):
            for offset in range(index, len(lines)):
                candidate = lines[offset].strip()
                if candidate and not candidate.startswith("#"):
                    target = offset + 1
                    break
        suppressions.append(Suppression(line=index, target=target, rules=rules))
    return suppressions


def apply_suppressions(
    ctx: FileContext,
    findings: list[Finding],
    suppressions: list[Suppression],
    selected: set[str] | None = None,
) -> list[Finding]:
    """Drop suppressed findings; report suppressions that matched nothing.

    ``selected`` names the rules this run executed. Unused-suppression
    detection only happens on a full run (``selected is None``): under
    ``--select`` a suppression for an unselected rule would look unused
    without being so.
    """
    used: set[int] = set()
    kept: list[Finding] = []
    for finding in findings:
        matched = False
        for position, suppression in enumerate(suppressions):
            if suppression.target != finding.line:
                continue
            if finding.rule in suppression.rules or "all" in suppression.rules:
                used.add(position)
                matched = True
        if not matched:
            kept.append(finding)
    if selected is None:
        for position, suppression in enumerate(suppressions):
            if position in used:
                continue
            rules = ",".join(sorted(suppression.rules))
            kept.append(
                ctx.finding(
                    suppression.line,
                    "unused-suppression",
                    f"suppression for {rules} matched no finding on line "
                    f"{suppression.target}; remove it",
                )
            )
    return kept


# ---------------------------------------------------------------------------
# shared AST helpers


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name -> dotted origin for every absolute import.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    sleep`` maps ``sleep -> time.sleep``; ``import urllib.request``
    binds the root: ``urllib -> urllib``. Relative imports are skipped —
    checks that care about intra-package names match bare class names
    instead.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """``np.random.default_rng`` -> ``numpy.random.default_rng``.

    Returns None when the chain's root is not an imported name — a
    local variable that merely shadows a module must not resolve.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in aliases:
        return ".".join([aliases[node.id], *reversed(parts)])
    return None


def self_root_attr(node: ast.AST) -> str | None:
    """The attribute a ``self``-rooted expression ultimately lives on.

    ``self.stats.hits`` -> ``stats``; ``self._entries[key]`` ->
    ``_entries``; ``self._rng.random()`` -> ``_rng``; anything not
    rooted at a ``self`` name -> None.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return parts[-1]
    return None
