"""Driving loop: discovery, fan-out, baseline, output formats.

``python tools/staticcheck`` (or ``repro staticcheck``) runs every
registered rule over the repo's Python files, applies inline
suppressions and the committed baseline, and reports what's left in
one of three formats: human ``text``, machine ``json``, or GitHub
workflow ``github`` annotations. Exit status is 1 when any new finding
or expired baseline entry remains, else 0.

``--jobs N`` fans file analysis out over N worker processes; each file
is parsed once and every applicable rule runs against the shared tree,
so the unit of work is the file, not the (file, rule) pair.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
from pathlib import Path

from . import checks as _checks  # staticcheck: disable=unused-import — imported for its registration side effect
from .baseline import Baseline
from .core import ALL_CHECKS, FileContext, Finding, apply_suppressions, parse_suppressions

__all__ = ["check_file", "discover_files", "main", "run_checks"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}

#: Default analysis targets, relative to the root.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")


def discover_files(paths: list[Path], root: Path) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files taken verbatim), sorted."""
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            found.add(path)
            continue
        if not path.is_dir():
            continue
        for current, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIP_DIRS and not name.startswith(".")
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(Path(current) / filename)
    return sorted(found)


def run_checks(ctx: FileContext, selected: set[str] | None = None) -> list[Finding]:
    """All applicable rules against one parsed file, pre-suppression."""
    findings: list[Finding] = []
    for name, check in sorted(ALL_CHECKS.items()):
        if selected is not None and name not in selected:
            continue
        if not check.applies(ctx):
            continue
        findings.extend(check.run(ctx))
    return findings


def check_file(
    path, root: Path | None = None, selected: set[str] | None = None
) -> list[Finding]:
    """One file end to end: parse, run rules, apply suppressions."""
    ctx = FileContext(path, root=root)
    try:
        ctx.tree
    except SyntaxError as exc:
        return [
            ctx.finding(
                exc.lineno or 0, "syntax-error", f"cannot parse: {exc.msg}"
            )
        ]
    findings = run_checks(ctx, selected)
    suppressions = parse_suppressions(ctx.source)
    findings = apply_suppressions(ctx, findings, suppressions, selected)
    return sorted(findings, key=Finding.sort_key)


def _check_file_worker(job: tuple[str, str | None, tuple[str, ...] | None]):
    path, root, selected = job
    return check_file(
        Path(path),
        root=Path(root) if root else None,
        selected=set(selected) if selected is not None else None,
    )


def _analyze(
    files: list[Path], root: Path, selected: set[str] | None, jobs: int
) -> list[Finding]:
    if jobs <= 1 or len(files) < 2:
        results = [check_file(path, root=root, selected=selected) for path in files]
    else:
        payload = [
            (str(path), str(root), tuple(sorted(selected)) if selected else None)
            for path in files
        ]
        with multiprocessing.Pool(processes=min(jobs, len(files))) as pool:
            results = pool.map(_check_file_worker, payload)
    findings = [finding for batch in results for finding in batch]
    return sorted(findings, key=Finding.sort_key)


# ---------------------------------------------------------------------------
# output


def _format_text(findings: list[Finding]) -> list[str]:
    return [f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in findings]


def _format_github(findings: list[Finding]) -> list[str]:
    return [
        f"::error file={f.path},line={f.line},"
        f"title=staticcheck {f.rule}::{f.message}"
        for f in findings
    ]


def _report_payload(
    findings: list[Finding], expired: list[dict], files_checked: int
) -> dict:
    return {
        "schema": "repro.staticcheck/1",
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in findings],
        "expired_baseline": expired,
    }


# ---------------------------------------------------------------------------
# entry point


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="staticcheck",
        description="Concurrency & determinism static analysis for this repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root for relative paths and the baseline (default: "
        "the tree containing this tool)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (repeatable); default all",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--json-output",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (any --format)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="baseline file (default <root>/tools/staticcheck_baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rule names and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for name in sorted(ALL_CHECKS):
            print(name)
        return 0

    root = args.root or Path(__file__).resolve().parents[2]
    root = root.resolve()
    paths = [Path(p) for p in args.paths] if args.paths else list(DEFAULT_PATHS)

    selected: set[str] | None = None
    if args.select:
        selected = {
            rule.strip()
            for chunk in args.select
            for rule in chunk.split(",")
            if rule.strip()
        }
        unknown = selected - set(ALL_CHECKS)
        if unknown:
            print(
                f"staticcheck: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    files = discover_files(paths, root)
    findings = _analyze(files, root, selected, jobs)

    baseline_path = args.baseline or root / "tools" / "staticcheck_baseline.json"
    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(
            f"staticcheck: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    expired: list[dict] = []
    if not args.no_baseline:
        findings, expired = Baseline.load(baseline_path).apply(findings)

    payload = _report_payload(findings, expired, len(files))
    if args.json_output is not None:
        args.json_output.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        lines = (
            _format_github(findings)
            if args.format == "github"
            else _format_text(findings)
        )
        for line in lines:
            print(line)
        for entry in expired:
            print(
                f"{entry['path']}: [baseline-expired] {entry['rule']} entry "
                f"matches no current finding: {entry['message']!r} — "
                "regenerate the baseline"
            )
        print(
            f"staticcheck: {len(files)} files checked, "
            f"{len(findings)} finding(s), {len(expired)} expired "
            "baseline entr" + ("y" if len(expired) == 1 else "ies")
        )

    return 1 if findings or expired else 0
